"""The legacy object-record event kernel (``REPRO_KERNEL=object``).

This module is the PR-5 kernel, frozen verbatim when the flat
struct-of-arrays kernel replaced it in :mod:`repro.sim.engine`.  It is
kept importable for differential testing: the golden-cell suite and
``tools/kernel_diff.py`` run the same grid under both kernels and demand
byte-identical simulated metrics.  Select it for a whole process by
setting ``REPRO_KERNEL=object`` before the first ``repro`` import.

:class:`Environment` owns the event heap and the simulated clock.  Time is a
float measured in *cycles* throughout the library (the cluster cost model
converts cycles to milliseconds for reporting).

Determinism: events scheduled for the same timestamp are processed in the
order they were scheduled (a monotonically increasing sequence number breaks
ties), so a given program produces bit-identical traces across runs.

Fast-path records
-----------------

The steady state of a work-stealing simulation is dominated by two shapes:
``yield env.timeout(cost)`` inside a process (one fresh :class:`Timeout`
plus a callbacks list per simulated stall) and the idle-worker park (an
``AnyOf`` over several fresh child events per failed round).  Both now have
allocation-free equivalents that put small *reusable records* on the heap
instead of one-shot events:

- :meth:`Environment.sleep` re-arms the calling process's single
  :class:`_Resume` record — the heap entry ``(due, seq, record)`` is the
  entire timeout;
- :class:`ParkRecord` is a per-worker cancellable park: wake sources call
  :meth:`ParkRecord._fire`, and stale heap entries (superseded wake hops,
  expired backoff probes) are disambiguated by sequence number instead of
  being removed, so nothing is ever searched or unlinked.

A heap record is recognized by ``callbacks is None`` — a *pending*
:class:`~repro.sim.events.Event` always carries a callbacks list, and
records set ``callbacks = None`` as a class attribute.  The kernel then
dispatches through ``record._pop(seq)``.

The ordering contract is preserved exactly: every record transition
consumes a sequence number at the same point the event path it replaces
did (a fired park performs the same two-hop ``child pop → composite pop``
dance through the heap), so simulated results are byte-identical to the
event-object kernel.  The only deleted heap traffic is provably
unobservable no-ops: stale waiter events whose ``succeed`` never resumed
anyone.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

#: Park wake causes, compared by identity in the worker loop (the fast
#: equivalent of comparing which child event won the legacy ``AnyOf``).
CAUSE_DONE = "done"
CAUSE_WORK = "work"
CAUSE_TIMEOUT = "timeout"
CAUSE_BOARD = "board"

#: :class:`ParkRecord` states.
PARK_IDLE = 0      # not parked; any heap entries are stale
PARK_PARKED = 1    # worker waiting; first _fire() wins
PARK_WAKING = 2    # wake hop 1 in the heap (the child-event pop stand-in)
PARK_RESUMING = 3  # wake hop 2 in the heap (the composite pop stand-in)


KERNEL = "object"


class Environment:
    """Discrete-event execution environment with a deterministic clock."""

    __slots__ = ("_now", "_queue", "_seq", "_active_processes", "_current",
                 "events_processed")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Any]] = []
        self._seq = 0
        self._active_processes = 0
        #: The process whose generator is currently executing (resumes are
        #: never nested — every resume comes from a heap pop), consulted by
        #: :meth:`sleep` to find the caller's resume record.
        self._current: Optional["Process"] = None
        #: Heap entries processed so far (events *and* fast records);
        #: benchmark fodder for events/sec.
        self.events_processed = 0

    # -- clock & scheduling -------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in cycles."""
        return self._now

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered ``event`` to be processed ``delay`` from now."""
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event triggering ``delay`` cycles in the future."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> "_Resume":
        """Allocation-free ``timeout`` for the calling process.

        Re-arms the process's reusable resume record and pushes it on the
        heap directly — no :class:`Timeout`, no callbacks list.  Only valid
        inside a running process (``yield env.sleep(cost)``); the record
        carries no payload, so the yield resumes with ``None`` exactly like
        a plain ``yield env.timeout(cost)``.
        """
        if delay < 0:
            raise SimulationError(f"negative sleep delay: {delay!r}")
        proc = self._current
        if proc is None:
            raise SimulationError("sleep() called outside a process")
        rec = proc._rec
        self._seq += 1
        rec._seq = self._seq
        heapq.heappush(self._queue, (self._now + delay, self._seq, rec))
        return rec

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event triggering on the first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event triggering when all ``events`` have triggered."""
        return AllOf(self, events)

    def process(self, generator: Generator[Event, Any, Any]) -> "Process":
        """Start a simulated process from ``generator``."""
        return Process(self, generator)

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next entry in the heap."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, seq, entry = heapq.heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = entry.callbacks
        if callbacks is None:
            entry._pop(seq)  # fast record (a pending Event always has a list)
            return
        entry.callbacks = None
        for callback in callbacks:
            callback(entry)

    def run(self, until: Optional[Event | float] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the event heap drains.
            A float — run until the clock reaches that time.
            An :class:`Event` — run until that event has been processed and
            return its value.

        Raises
        ------
        DeadlockError
            If ``until`` is an event, the heap drains, and the event never
            triggered: no remaining activity can ever wake the waiters.
        """
        stop_event: Optional[Event] = None
        stop_time: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("until lies in the past")

        # The hot loop below is step() inlined with the loop-invariant
        # lookups hoisted; step() stays public for tests and debugging.
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        try:
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    return stop_event.value
                if stop_time is not None and queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                when, seq, entry = pop(queue)
                self._now = when
                processed += 1
                callbacks = entry.callbacks
                if callbacks is None:
                    entry._pop(seq)
                else:
                    entry.callbacks = None
                    for callback in callbacks:
                        callback(entry)
        finally:
            self.events_processed += processed

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise DeadlockError(
                "event queue drained before the 'until' event triggered; "
                f"{self._active_processes} process(es) still alive")
        if stop_time is not None:
            self._now = stop_time
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the heap is empty."""
        return self._queue[0][0] if self._queue else float("inf")


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Resume(object):
    """Reusable heap record resuming one process (see :meth:`Environment.sleep`).

    Exactly one per process; re-armed by storing a fresh sequence number.
    A heap entry whose ``seq`` no longer matches :attr:`_seq` was superseded
    (the process was interrupted and slept again) and pops as a no-op.
    """

    __slots__ = ("process", "_seq")

    #: Class-level marker: ``callbacks is None`` routes the kernel to
    #: :meth:`_pop` instead of the event-callback path.
    callbacks = None

    def __init__(self, process: "Process") -> None:
        self.process = process
        self._seq = -1

    def _pop(self, seq: int) -> None:
        if seq != self._seq:
            return  # superseded by an interrupt; nothing to wake
        self._seq = -1
        proc = self.process
        proc._waiting_on = None
        proc._step_send(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_Resume armed={self._seq != -1}>"


class _ParkProbe(object):
    """Backoff-deadline probe for one :class:`ParkRecord`.

    One probe serves every park round of its worker: consecutive rounds
    whose deadline is already *covered* by an outstanding probe entry
    (``_dues``) push nothing, which is what keeps the heap O(workers) under
    idle churn — the legacy kernel left one abandoned backoff ``Timeout``
    per failed round.  A stale probe pop re-arms itself at the current
    deadline (with the deadline's own pre-assigned sequence number, i.e.
    exactly the heap entry the legacy ``Timeout`` would have occupied).
    """

    __slots__ = ("park",)

    callbacks = None

    def __init__(self, park: "ParkRecord") -> None:
        self.park = park

    def _pop(self, seq: int) -> None:
        park = self.park
        heapq.heappop(park._dues)
        state = park.state
        if seq == park._deadline_seq:
            if state == PARK_PARKED or state == PARK_WAKING:
                # The deadline may overtake a wake hop already in flight:
                # the legacy backoff Timeout (scheduled at park time, hence
                # an earlier seq) popped before the waker's child event and
                # won the AnyOf race.
                park._fire_timeout()
        elif state == PARK_PARKED or state == PARK_WAKING:
            deadline = park._deadline
            dues = park._dues
            if not dues or dues[0] > deadline:
                heapq.heappush(park.env._queue,
                               (deadline, park._deadline_seq, self))
                heapq.heappush(dues, deadline)


class ParkRecord(object):
    """A worker's reusable, cancellable idle park.

    Replaces the per-round ``AnyOf([gate.wait(), work_event, timeout,
    surplus_event])``: wake sources (:meth:`~repro.runtime.place.Place.
    notify_work`, the status board, the termination gate, the backoff
    deadline) call :meth:`_fire` with a cause, and the worker's generator
    receives that cause from ``yield park``.

    Waking preserves the legacy two-hop heap structure — hop 1 stands in
    for the fired child event's pop, hop 2 for the composite's — so any
    event scheduled between those pops keeps its relative order.  Losers
    of a same-timestamp race are skipped by the ``state``/sequence guards
    precisely where the legacy kernel popped their no-op ``succeed``.
    """

    __slots__ = ("env", "process", "state", "cause", "round",
                 "_deadline", "_deadline_seq", "_hop_seq", "_probe", "_dues")

    callbacks = None

    def __init__(self, env: Environment, process: "Process") -> None:
        self.env = env
        self.process = process
        self.state = PARK_IDLE
        self.cause: Any = None
        #: Monotone park-round counter; waiter-list entries carry the round
        #: they were registered for, so entries from earlier rounds are
        #: recognizably stale without being unlinked.
        self.round = 0
        self._deadline = 0.0
        self._deadline_seq = -1
        self._hop_seq = -1
        self._probe = _ParkProbe(self)
        #: Due times of this worker's outstanding probe heap entries
        #: (a tiny min-heap, usually length 1).
        self._dues: List[float] = []

    def begin(self, delay: float, gate_open: bool) -> "ParkRecord":
        """Arm the park for one idle round; yield ``self`` afterwards.

        Sequence numbers are consumed exactly as the legacy park did: an
        already-open gate fires first (the ``gate.wait()`` of a dead
        computation succeeded before the backoff timeout was created), then
        the backoff deadline claims its number whether or not a probe entry
        is pushed for it.
        """
        self.round += 1
        self.state = PARK_PARKED
        self.cause = None
        if gate_open:
            self._fire(CAUSE_DONE)
        env = self.env
        env._seq += 1
        due = env._now + delay
        self._deadline = due
        self._deadline_seq = env._seq
        dues = self._dues
        if not dues or dues[0] > due:
            heapq.heappush(env._queue, (due, env._seq, self._probe))
            heapq.heappush(dues, due)
        return self

    def _fire(self, cause: Any) -> None:
        """A wake source signals the parked worker (first caller wins)."""
        if self.state != PARK_PARKED:
            return  # not parked, or a same-timestamp sibling already won
        self.state = PARK_WAKING
        self.cause = cause
        env = self.env
        env._seq += 1
        self._hop_seq = env._seq
        heapq.heappush(env._queue, (env._now, env._seq, self))

    def _fire_timeout(self) -> None:
        """The backoff deadline fires (may override a pending wake hop)."""
        self.cause = CAUSE_TIMEOUT
        self.state = PARK_RESUMING
        env = self.env
        env._seq += 1
        self._hop_seq = env._seq
        heapq.heappush(env._queue, (env._now, env._seq, self))

    def cancel(self) -> None:
        """Detach from the current round (the worker was interrupted)."""
        self.state = PARK_IDLE
        self.cause = None
        self._hop_seq = -1

    def _pop(self, seq: int) -> None:
        if seq != self._hop_seq:
            return  # a superseding wake re-armed the record
        state = self.state
        if state == PARK_WAKING:
            # Hop 2: the stand-in for the legacy composite's own pop.
            self.state = PARK_RESUMING
            env = self.env
            env._seq += 1
            self._hop_seq = env._seq
            heapq.heappush(env._queue, (env._now, env._seq, self))
        elif state == PARK_RESUMING:
            self.state = PARK_IDLE
            self._hop_seq = -1
            proc = self.process
            proc._waiting_on = None
            proc._step_send(self.cause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {PARK_IDLE: "idle", PARK_PARKED: "parked",
                 PARK_WAKING: "waking", PARK_RESUMING: "resuming"}
        return f"<ParkRecord {names[self.state]} round={self.round}>"


class Process(Event):
    """A running simulated process wrapping a generator of events.

    A Process is itself an :class:`Event` that triggers when the generator
    returns (payload: the return value) or raises (failure).  This allows
    processes to wait for each other by yielding a Process.
    """

    __slots__ = ("generator", "_waiting_on", "_rec", "_resume_cb")

    def __init__(self, env: Environment, generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("process() requires a generator")
        self.generator = generator
        #: Reusable :meth:`Environment.sleep` record (doubles as the
        #: bootstrap: the first pop starts the generator).
        self._rec = _Resume(self)
        #: The bound resume method, allocated once instead of per event.
        self._resume_cb = self._resume
        env._active_processes += 1
        # Kick off the process at the current simulated time.
        env._seq += 1
        self._rec._seq = env._seq
        heapq.heappush(env._queue, (env._now, env._seq, self._rec))
        self._waiting_on: Any = self._rec

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            if target is self._rec:
                target._seq = -1  # the pending sleep entry pops as a no-op
            elif isinstance(target, ParkRecord):
                target.cancel()
            elif not target.processed:
                # Stop the pending resume; deliver the interrupt instead.
                try:
                    target.callbacks.remove(self._resume_cb)
                except (ValueError, AttributeError):
                    pass
                # If the event sits in a resource's waiter queue (e.g. a
                # SimLock acquire), the resource must not hand over to this
                # now-dead process — it would strand the lock forever.
                target._abandoned = True
        self._waiting_on = None
        wake = Event(self.env)
        wake.add_callback(lambda ev: self._throw(Interrupt(cause)))
        wake.succeed()

    # -- internals ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._step_throw(exc)

    def _step_send(self, value: Any) -> None:
        """Advance the generator with ``value``; handle what it yields."""
        env = self.env
        env._current = self
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            env._current = None
            env._active_processes -= 1
            self.succeed(stop.value)
            return
        except (KeyboardInterrupt, SystemExit):
            # A host-level interrupt (ctrl-C, SIGTERM) landing mid-step
            # aborts the whole run; it must never masquerade as a
            # simulated process death.
            env._current = None
            raise
        except BaseException as exc:
            env._current = None
            env._active_processes -= 1
            self.fail(exc)
            return
        env._current = None
        self._handle(target)

    def _step_throw(self, exc: BaseException) -> None:
        """Advance the generator by throwing ``exc`` into it."""
        env = self.env
        env._current = self
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            env._current = None
            env._active_processes -= 1
            self.succeed(stop.value)
            return
        except (KeyboardInterrupt, SystemExit):
            env._current = None
            raise
        except BaseException as raised:
            env._current = None
            env._active_processes -= 1
            self.fail(raised)
            return
        env._current = None
        self._handle(target)

    def _handle(self, target: Any) -> None:
        """Wait on whatever the generator yielded."""
        if target is self._rec:
            self._waiting_on = target  # armed by env.sleep()
            return
        if isinstance(target, Event):
            if target.callbacks is None:
                self.env._active_processes -= 1
                self.fail(SimulationError(
                    "process yielded an already-processed event"))
                return
            self._waiting_on = target
            target.callbacks.append(self._resume_cb)
            return
        if isinstance(target, ParkRecord):
            self._waiting_on = target  # armed by ParkRecord.begin()
            return
        self.env._active_processes -= 1
        self.fail(SimulationError(
            f"process yielded {target!r}; processes must yield Events"))
