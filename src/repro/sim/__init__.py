"""Deterministic discrete-event simulation kernel (SimPy-flavoured).

Public surface:

- :class:`Environment` — event heap + simulated clock; ``env.process(gen)``
  turns a generator into a simulated process.
- :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` — things a
  process can ``yield``.
- :class:`SimLock`, :class:`Gate`, :class:`Mailbox` — synchronization in
  simulated time.
- :class:`RngStreams` — named deterministic random substreams.
"""

from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.resources import Gate, Mailbox, SimLock
from repro.sim.rng import RngStreams, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Gate",
    "Interrupt",
    "Mailbox",
    "Process",
    "RngStreams",
    "SimLock",
    "Timeout",
    "derive_seed",
]
