"""Event primitives for the discrete-event kernel.

The kernel follows the SimPy model: simulated *processes* are Python
generators that ``yield`` :class:`Event` objects and are resumed when the
event triggers.  Only the handful of event types the runtime needs are
implemented, which keeps the kernel small enough to verify exhaustively.

Events have a three-stage lifecycle::

    pending --(succeed/fail)--> triggered --(kernel pops it)--> processed

Callbacks (including process resumption) run when the kernel processes the
event, in deterministic FIFO order of registration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

#: Sentinel stored in :attr:`Event._value` while the event is pending.
PENDING = object()


class Event:
    """A one-shot occurrence at a point in simulated time.

    Parameters
    ----------
    env:
        The environment that will schedule this event's callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled",
                 "_abandoned")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        #: Set when the process waiting on this event was interrupted
        #: (e.g. a place crash): resources holding the event in a waiter
        #: queue must skip it instead of handing over to a dead process.
        self._abandoned = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event already has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` (or the failure exception)."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as payload."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiting processes see ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError("cannot add callback to a processed event")
        self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timeout delay={self.delay!r}>"


class AnyOf(Event):
    """Triggers as soon as any of ``events`` occurs (is processed).

    The payload is the first event that occurred.  Failure of any child
    event fails the composite.

    Note the distinction between *triggered* (the event has a value and is
    scheduled — e.g. every :class:`Timeout` from birth) and *processed*
    (its due time arrived and callbacks ran).  Composites react to the
    latter: a pre-scheduled timeout has not happened yet.
    """

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        self.events = list(events)
        for ev in self.events:
            if ev.processed:
                # Already happened: the composite fires now.
                self._absorb(ev)
                return
            ev.add_callback(self._absorb)

    def _absorb(self, ev: Event) -> None:
        if self.triggered:
            return  # a sibling won the race
        if ev._ok:
            self.succeed(ev)
        else:
            self.fail(ev._value)


class AllOf(Event):
    """Triggers when all of ``events`` have occurred successfully."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: List[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._remaining = 0
        failed = None
        for ev in self.events:
            if ev.processed:
                if not ev._ok and failed is None:
                    failed = ev._value
                continue
            self._remaining += 1
            ev.add_callback(self._arrived)
        if failed is not None:
            self.fail(failed)
        elif self._remaining == 0:
            self.succeed([ev.value for ev in self.events])

    def _arrived(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events if e.processed])
