"""Deterministic random-number streams.

Every stochastic decision in the simulator (victim selection, workload
synthesis, app inputs) draws from a named substream derived from a single
experiment seed, so that (a) runs are bit-reproducible and (b) changing one
component's consumption pattern does not perturb any other component's
stream — a standard requirement for comparable discrete-event experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a name path.

    The derivation hashes the textual path so that streams are independent
    of declaration order and stable across runs and platforms.
    """
    text = f"{int(root_seed)}/" + "/".join(str(n) for n in names)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RngStreams:
    """A factory of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, *names: object) -> np.random.Generator:
        """Return the generator for the given name path, creating it once.

        Repeated calls with the same path return the *same* generator object,
        so consumption state is shared along a path but isolated across paths.
        """
        key = "/".join(str(n) for n in names)
        gen = self._cache.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *names))
            self._cache[key] = gen
        return gen

    def fresh(self, *names: object) -> np.random.Generator:
        """Return a brand-new generator for the path (no caching)."""
        return np.random.default_rng(derive_seed(self.root_seed, *names))
