"""Parallel sharded experiment execution with a content-addressed cache.

The paper's evaluation (§VIII) is a grid: every (application, scheduler,
cluster, seed) cell is one independent, deterministic simulation.  This
module shards that grid over a process pool and memoises finished cells
on disk, so ``examples/reproduce_paper.py`` scales with the host's cores
and repeated runs (including the ``--faults`` calibration pre-runs) skip
simulation entirely.

Three layers:

- :class:`RunSpec` — a frozen, picklable description of *one* simulation
  run.  Its :meth:`RunSpec.cache_key` is a stable SHA-256 over every
  input that can change the resulting :class:`RunStats` (app + scale +
  seeds, scheduler + kwargs, cluster spec, cost model, fault plan), so
  equal keys imply byte-identical ``RunStats.snapshot()`` output.
- :class:`ResultCache` — a content-addressed directory of pickled
  :class:`RunResult` objects, written atomically, keyed by
  :meth:`RunSpec.cache_key`.  Corrupt or unreadable entries count as
  misses and are evicted.
- :class:`ExecutionContext` — how runs execute right now: a worker
  budget (``parallel``) and an optional cache.  The active context is
  process-global and installed with :func:`execution`; the serial
  default keeps every existing entry point byte-identical to the
  pre-parallel behaviour.

Determinism contract: a cell's result depends only on its
:class:`RunSpec`.  Sharding changes *where* a cell simulates, never its
seeds, so for any worker count (and any cache state) the grid's
``RunStats.snapshot()`` JSON is byte-identical to serial execution.
Only ``RunResult.wall_seconds`` (host-side timing) varies between
executions; it never enters a snapshot.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.topology import ClusterSpec, paper_cluster
from repro.errors import ConfigError

#: Bump when the simulation's observable behaviour changes in a way the
#: spec payload cannot express (schema migrations invalidate old entries).
CACHE_SCHEMA_VERSION = 1


def _freeze_kwargs(kwargs: Optional[dict]) -> Tuple[Tuple[str, object], ...]:
    """Canonicalise an optional kwargs dict into a sorted item tuple."""
    if not kwargs:
        return ()
    return tuple(sorted(kwargs.items()))


def _jsonable(value):
    """Recursively convert specs/cost models/fault plans to JSON shapes."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run's statistics."""

    app: str
    scheduler: str
    spec: ClusterSpec
    app_seed: int = 12345
    sched_seed: int = 1
    scale: str = "bench"
    costs: CostModel = DEFAULT_COST_MODEL
    validate: bool = True
    #: Sorted ``(key, value)`` items; use :meth:`build` to pass dicts.
    sched_kwargs: Tuple[Tuple[str, object], ...] = ()
    app_overrides: Tuple[Tuple[str, object], ...] = ()
    fault_plan: Optional[object] = None  # a resolved FaultPlan, or None

    @classmethod
    def build(cls, app: str, scheduler: str,
              spec: Optional[ClusterSpec] = None,
              app_seed: int = 12345, sched_seed: int = 1,
              scale: str = "bench",
              costs: CostModel = DEFAULT_COST_MODEL,
              validate: bool = True,
              sched_kwargs: Optional[dict] = None,
              app_overrides: Optional[dict] = None,
              fault_plan=None) -> "RunSpec":
        """Normalising constructor mirroring ``run_once``'s signature."""
        return cls(app=app, scheduler=scheduler,
                   spec=spec or paper_cluster(),
                   app_seed=app_seed, sched_seed=sched_seed, scale=scale,
                   costs=costs, validate=validate,
                   sched_kwargs=_freeze_kwargs(sched_kwargs),
                   app_overrides=_freeze_kwargs(app_overrides),
                   fault_plan=fault_plan)

    def payload(self) -> Dict[str, object]:
        """Canonical JSON-shaped view of every result-determining input."""
        return {
            "version": CACHE_SCHEMA_VERSION,
            "app": self.app,
            "scheduler": self.scheduler,
            "spec": _jsonable(self.spec),
            "app_seed": self.app_seed,
            "sched_seed": self.sched_seed,
            "scale": self.scale,
            "costs": _jsonable(self.costs),
            "validate": self.validate,
            "sched_kwargs": _jsonable(dict(self.sched_kwargs)),
            "app_overrides": _jsonable(dict(self.app_overrides)),
            "fault_plan": _jsonable(self.fault_plan),
        }

    def cache_key(self) -> str:
        """Stable content hash: equal keys => byte-identical snapshots."""
        canon = json.dumps(self.payload(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def simulate(spec: RunSpec):
    """Execute one :class:`RunSpec` in this process (pool entry point).

    Top-level (picklable) on purpose; builds a fresh app + scheduler +
    runtime, so runs are independent whichever process hosts them.
    """
    import time

    from repro.apps import make_app
    from repro.harness.experiment import RunResult
    from repro.runtime.runtime import SimRuntime
    from repro.sched import make_scheduler

    app = make_app(spec.app, scale=spec.scale, seed=spec.app_seed,
                   **dict(spec.app_overrides))
    sched = make_scheduler(spec.scheduler, **dict(spec.sched_kwargs))
    rt = SimRuntime(spec.spec, sched, costs=spec.costs,
                    seed=spec.sched_seed)
    if spec.fault_plan is not None:
        from repro.faults import FaultInjector
        FaultInjector(spec.fault_plan).attach(rt)
    t0 = time.perf_counter()
    stats = app.run(rt, validate=spec.validate)
    wall = time.perf_counter() - t0
    return RunResult(spec.app, spec.scheduler, spec.spec, spec.app_seed,
                     spec.sched_seed, stats, wall)


class ResultCache:
    """Content-addressed on-disk cache of pickled :class:`RunResult`\\ s."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.pkl")

    def get(self, spec: RunSpec):
        """The cached :class:`RunResult` for ``spec``, or ``None``."""
        entry = self._entry(spec.cache_key())
        try:
            with open(entry, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, OSError):
            # A torn or stale entry is a miss; evict it so the slot heals.
            try:
                os.unlink(entry)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result) -> None:
        """Store ``result`` under ``spec``'s key (atomic rename)."""
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._entry(spec.cache_key()))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.path)
                   if name.endswith(".pkl"))

    def clear(self) -> None:
        """Drop every cached entry."""
        for name in os.listdir(self.path):
            if name.endswith(".pkl"):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass


@dataclasses.dataclass(frozen=True)
class CellRequest:
    """One experiment-grid cell: a run per scheduler seed, aggregated.

    Mirrors ``run_cell``'s signature; like the serial path, only the
    first seed validates application output (repeating validation on a
    deterministic app is redundant).
    """

    app: str
    scheduler: str
    spec: ClusterSpec
    sched_seeds: Tuple[int, ...] = (1, 2, 3)
    app_seed: int = 12345
    scale: str = "bench"
    costs: CostModel = DEFAULT_COST_MODEL
    validate: bool = True
    sched_kwargs: Tuple[Tuple[str, object], ...] = ()
    app_overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def build(cls, app: str, scheduler: str,
              spec: Optional[ClusterSpec] = None,
              sched_seeds: Sequence[int] = (1, 2, 3),
              app_seed: int = 12345, scale: str = "bench",
              costs: CostModel = DEFAULT_COST_MODEL,
              validate: bool = True,
              sched_kwargs: Optional[dict] = None,
              app_overrides: Optional[dict] = None) -> "CellRequest":
        if not sched_seeds:
            raise ConfigError("a cell needs at least one scheduler seed")
        return cls(app=app, scheduler=scheduler,
                   spec=spec or paper_cluster(),
                   sched_seeds=tuple(sched_seeds), app_seed=app_seed,
                   scale=scale, costs=costs, validate=validate,
                   sched_kwargs=_freeze_kwargs(sched_kwargs),
                   app_overrides=_freeze_kwargs(app_overrides))

    def to_specs(self) -> List[RunSpec]:
        """Expand into per-seed :class:`RunSpec`\\ s (validate-first)."""
        specs = []
        validate = self.validate
        for s in self.sched_seeds:
            specs.append(RunSpec(
                app=self.app, scheduler=self.scheduler, spec=self.spec,
                app_seed=self.app_seed, sched_seed=s, scale=self.scale,
                costs=self.costs, validate=validate,
                sched_kwargs=self.sched_kwargs,
                app_overrides=self.app_overrides))
            validate = False
        return specs


class ExecutionContext:
    """How experiment runs execute: worker budget plus optional cache."""

    def __init__(self, parallel: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if parallel < 1:
            raise ConfigError(f"parallel must be >= 1, got {parallel}")
        self.parallel = parallel
        self.cache = cache
        #: Simulations actually executed (cache hits excluded).
        self.simulations = 0

    # -- execution ---------------------------------------------------------
    def run_specs(self, specs: Sequence[RunSpec],
                  on_result: Optional[Callable[[int, RunSpec, object],
                                               None]] = None) -> List[object]:
        """Execute ``specs``, returning results in input order.

        Identical specs are simulated once and fanned back out.  With a
        cache attached, hits skip simulation; fresh results are stored.
        ``on_result(index, spec, result)`` streams each run back as it
        completes (indices arrive out of order under a pool; the returned
        list is always input-ordered).
        """
        results: List[object] = [None] * len(specs)
        pending: Dict[str, List[int]] = {}

        def deliver(indices: List[int], result) -> None:
            for i in indices:
                results[i] = result
                if on_result is not None:
                    on_result(i, specs[i], result)

        for i, spec in enumerate(specs):
            key = spec.cache_key()
            if key in pending:
                pending[key].append(i)
                continue
            if self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    deliver([i], hit)
                    continue
            pending[key] = [i]

        todo = [(indices, specs[indices[0]])
                for indices in pending.values()]
        if len(todo) > 1 and self.parallel > 1:
            self._run_pool(todo, deliver)
        else:
            for indices, spec in todo:
                result = simulate(spec)
                self.simulations += 1
                if self.cache is not None:
                    self.cache.put(spec, result)
                deliver(indices, result)
        return results

    def _run_pool(self, todo, deliver) -> None:
        """Shard ``todo`` over a process pool, streaming completions."""
        workers = min(self.parallel, len(todo))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(simulate, spec): (indices, spec)
                       for indices, spec in todo}
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                for fut in done:
                    indices, spec = futures[fut]
                    result = fut.result()  # propagate worker exceptions
                    self.simulations += 1
                    if self.cache is not None:
                        self.cache.put(spec, result)
                    deliver(indices, result)

    def run_cells(self, requests: Sequence[CellRequest]) -> List[object]:
        """Execute a grid of cells; one :class:`CellResult` per request.

        The whole grid is flattened to runs first, so the pool shards
        across cells (not just within one cell's seeds).
        """
        from repro.harness.experiment import CellResult

        specs: List[RunSpec] = []
        slices: List[Tuple[int, int]] = []
        for req in requests:
            start = len(specs)
            specs.extend(req.to_specs())
            slices.append((start, len(specs)))
        flat = self.run_specs(specs)
        return [CellResult(runs=flat[start:stop])
                for start, stop in slices]


#: The active context; the serial, cache-less default reproduces the
#: original single-process behaviour exactly.
_current = ExecutionContext()


def current_context() -> ExecutionContext:
    """The execution context harness entry points route through."""
    return _current


@contextmanager
def execution(parallel: int = 1, cache_dir: Optional[str] = None,
              cache: Optional[ResultCache] = None):
    """Install an :class:`ExecutionContext` for the enclosed block.

    ``with execution(parallel=4, cache_dir=".repro-cache"): fig5()``
    shards every cell fig5 runs over four processes and memoises them.
    """
    global _current
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    ctx = ExecutionContext(parallel=parallel, cache=cache)
    previous = _current
    _current = ctx
    try:
        yield ctx
    finally:
        _current = previous


def run_cells(requests: Sequence[CellRequest]) -> List[object]:
    """Execute cells under the active context (module-level convenience)."""
    return current_context().run_cells(requests)
