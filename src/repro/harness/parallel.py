"""Parallel sharded experiment execution with a content-addressed cache.

The paper's evaluation (§VIII) is a grid: every (application, scheduler,
cluster, seed) cell is one independent, deterministic simulation.  This
module shards that grid over a process pool and memoises finished cells
on disk, so ``examples/reproduce_paper.py`` scales with the host's cores
and repeated runs (including the ``--faults`` calibration pre-runs) skip
simulation entirely.

Three layers:

- :class:`RunSpec` — a frozen, picklable description of *one* simulation
  run.  Its :meth:`RunSpec.cache_key` is a stable SHA-256 over every
  input that can change the resulting :class:`RunStats` (app + scale +
  seeds, scheduler + kwargs, cluster spec, cost model, fault plan), so
  equal keys imply byte-identical ``RunStats.snapshot()`` output.
- :class:`ResultCache` — a content-addressed directory of pickled
  :class:`RunResult` objects, written atomically, keyed by
  :meth:`RunSpec.cache_key`.  Corrupt or unreadable entries count as
  misses and are evicted.
- :class:`ExecutionContext` — how runs execute right now: a worker
  budget (``parallel``), an optional cache, and optionally a durable
  :class:`~repro.harness.db.ExperimentStore` job queue (crash-resilient
  multi-worker sweeps).  The active context is process-global and
  installed with :func:`execution`; the serial default keeps every
  existing entry point byte-identical to the pre-parallel behaviour.

Determinism contract: a cell's result depends only on its
:class:`RunSpec`.  Sharding changes *where* a cell simulates, never its
seeds, so for any worker count (and any cache state) the grid's
``RunStats.snapshot()`` JSON is byte-identical to serial execution.
Only ``RunResult.wall_seconds`` (host-side timing) varies between
executions; it never enters a snapshot.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.topology import ClusterSpec, paper_cluster
from repro.errors import ConfigError

#: Bump when the simulation's observable behaviour changes in a way the
#: spec payload cannot express (schema migrations invalidate old entries).
CACHE_SCHEMA_VERSION = 1


def _freeze_kwargs(kwargs: Optional[dict]) -> Tuple[Tuple[str, object], ...]:
    """Canonicalise an optional kwargs dict into a sorted item tuple."""
    if not kwargs:
        return ()
    return tuple(sorted(kwargs.items()))


def _jsonable(value):
    """Recursively convert specs/cost models/fault plans to JSON shapes."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(value[k]) for k in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation run's statistics."""

    app: str
    scheduler: str
    spec: ClusterSpec
    app_seed: int = 12345
    sched_seed: int = 1
    scale: str = "bench"
    costs: CostModel = DEFAULT_COST_MODEL
    validate: bool = True
    #: Sorted ``(key, value)`` items; use :meth:`build` to pass dicts.
    sched_kwargs: Tuple[Tuple[str, object], ...] = ()
    app_overrides: Tuple[Tuple[str, object], ...] = ()
    fault_plan: Optional[object] = None  # a resolved FaultPlan, or None

    @classmethod
    def build(cls, app: str, scheduler: str,
              spec: Optional[ClusterSpec] = None,
              app_seed: int = 12345, sched_seed: int = 1,
              scale: str = "bench",
              costs: CostModel = DEFAULT_COST_MODEL,
              validate: bool = True,
              sched_kwargs: Optional[dict] = None,
              app_overrides: Optional[dict] = None,
              fault_plan=None) -> "RunSpec":
        """Normalising constructor mirroring ``run_once``'s signature."""
        return cls(app=app, scheduler=scheduler,
                   spec=spec or paper_cluster(),
                   app_seed=app_seed, sched_seed=sched_seed, scale=scale,
                   costs=costs, validate=validate,
                   sched_kwargs=_freeze_kwargs(sched_kwargs),
                   app_overrides=_freeze_kwargs(app_overrides),
                   fault_plan=fault_plan)

    def payload(self) -> Dict[str, object]:
        """Canonical JSON-shaped view of every result-determining input."""
        return {
            "version": CACHE_SCHEMA_VERSION,
            "app": self.app,
            "scheduler": self.scheduler,
            "spec": _jsonable(self.spec),
            "app_seed": self.app_seed,
            "sched_seed": self.sched_seed,
            "scale": self.scale,
            "costs": _jsonable(self.costs),
            "validate": self.validate,
            "sched_kwargs": _jsonable(dict(self.sched_kwargs)),
            "app_overrides": _jsonable(dict(self.app_overrides)),
            "fault_plan": _jsonable(self.fault_plan),
        }

    def cache_key(self) -> str:
        """Stable content hash: equal keys => byte-identical snapshots."""
        canon = json.dumps(self.payload(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def simulate(spec: RunSpec, bus=None):
    """Execute one :class:`RunSpec` in this process (pool entry point).

    Top-level (picklable) on purpose; builds a fresh app + scheduler +
    runtime, so runs are independent whichever process hosts them.

    ``bus`` (an :class:`repro.obs.EventBus`, optional) attaches before
    the run so fleet workers can observe without touching this hot path
    for everyone else — with no bus the run is byte-identical to PR-2's
    no-sink contract.
    """
    import time

    from repro.apps import make_app
    from repro.harness.experiment import RunResult
    from repro.runtime.runtime import SimRuntime
    from repro.sched import make_scheduler

    app = make_app(spec.app, scale=spec.scale, seed=spec.app_seed,
                   **dict(spec.app_overrides))
    sched = make_scheduler(spec.scheduler, **dict(spec.sched_kwargs))
    rt = SimRuntime(spec.spec, sched, costs=spec.costs,
                    seed=spec.sched_seed)
    if spec.fault_plan is not None:
        from repro.faults import FaultInjector
        FaultInjector(spec.fault_plan).attach(rt)
    if bus is not None:
        bus.attach(rt)
    t0 = time.perf_counter()
    stats = app.run(rt, validate=spec.validate)
    wall = time.perf_counter() - t0
    return RunResult(spec.app, spec.scheduler, spec.spec, spec.app_seed,
                     spec.sched_seed, stats, wall)


class ResultCache:
    """Content-addressed on-disk cache of pickled :class:`RunResult`\\ s."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(path, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.io_errors = 0
        self._warned: set = set()

    def _entry(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.pkl")

    def _warn(self, what: str, exc: OSError) -> None:
        """One-line, once-per-cause warning: an unusable cache must not
        degrade invisibly into a 100% miss rate."""
        self.io_errors += 1
        cause = type(exc).__name__
        if (what, cause) in self._warned:
            return
        self._warned.add((what, cause))
        warnings.warn(f"result cache {self.path}: {what} ({exc}); "
                      "continuing without this entry", RuntimeWarning,
                      stacklevel=3)

    def get(self, spec: RunSpec):
        """The cached :class:`RunResult` for ``spec``, or ``None``."""
        entry = self._entry(spec.cache_key())
        try:
            with open(entry, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except PermissionError as exc:
            # An unreadable dir is an operational problem, not a miss.
            self._warn("entry unreadable", exc)
            self.misses += 1
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, OSError) as exc:
            # A torn or stale entry is a miss; evict it so the slot heals.
            try:
                os.unlink(entry)
            except FileNotFoundError:
                pass  # racing eviction already healed the slot
            except OSError as unlink_exc:
                self._warn("cannot evict corrupt entry", unlink_exc)
            if isinstance(exc, OSError):
                self._warn("entry read failed", exc)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result) -> None:
        """Store ``result`` under ``spec``'s key (atomic rename).

        A cache that cannot be written (read-only or full directory) is
        reported once and skipped — it must not abort the simulation
        whose result it was merely memoising.
        """
        try:
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        except OSError as exc:
            self._warn("store failed", exc)
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._entry(spec.cache_key()))
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._warn("store failed", exc)
            return
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.path)
                   if name.endswith(".pkl"))

    def clear(self) -> None:
        """Drop every cached entry."""
        for name in os.listdir(self.path):
            if name.endswith(".pkl"):
                try:
                    os.unlink(os.path.join(self.path, name))
                except FileNotFoundError:
                    pass  # concurrent clear/eviction won the race
                except OSError as exc:
                    self._warn("clear failed", exc)


@dataclasses.dataclass(frozen=True)
class CellRequest:
    """One experiment-grid cell: a run per scheduler seed, aggregated.

    Mirrors ``run_cell``'s signature; like the serial path, only the
    first seed validates application output (repeating validation on a
    deterministic app is redundant).
    """

    app: str
    scheduler: str
    spec: ClusterSpec
    sched_seeds: Tuple[int, ...] = (1, 2, 3)
    app_seed: int = 12345
    scale: str = "bench"
    costs: CostModel = DEFAULT_COST_MODEL
    validate: bool = True
    sched_kwargs: Tuple[Tuple[str, object], ...] = ()
    app_overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def build(cls, app: str, scheduler: str,
              spec: Optional[ClusterSpec] = None,
              sched_seeds: Sequence[int] = (1, 2, 3),
              app_seed: int = 12345, scale: str = "bench",
              costs: CostModel = DEFAULT_COST_MODEL,
              validate: bool = True,
              sched_kwargs: Optional[dict] = None,
              app_overrides: Optional[dict] = None) -> "CellRequest":
        if not sched_seeds:
            raise ConfigError("a cell needs at least one scheduler seed")
        return cls(app=app, scheduler=scheduler,
                   spec=spec or paper_cluster(),
                   sched_seeds=tuple(sched_seeds), app_seed=app_seed,
                   scale=scale, costs=costs, validate=validate,
                   sched_kwargs=_freeze_kwargs(sched_kwargs),
                   app_overrides=_freeze_kwargs(app_overrides))

    def to_specs(self) -> List[RunSpec]:
        """Expand into per-seed :class:`RunSpec`\\ s (validate-first)."""
        specs = []
        validate = self.validate
        for s in self.sched_seeds:
            specs.append(RunSpec(
                app=self.app, scheduler=self.scheduler, spec=self.spec,
                app_seed=self.app_seed, sched_seed=s, scale=self.scale,
                costs=self.costs, validate=validate,
                sched_kwargs=self.sched_kwargs,
                app_overrides=self.app_overrides))
            validate = False
        return specs


class ExecutionContext:
    """How experiment runs execute: worker budget, optional cache, and
    optionally a durable :class:`~repro.harness.db.ExperimentStore`.

    With ``store=`` set, specs are enqueued as rows and drained through
    the store's lease/heartbeat/reaper protocol instead of a transient
    process pool: ``parallel - 1`` helper worker processes are spawned
    (the coordinator drains too), cells finished by a *previous* run of
    the same store are never re-simulated, and external ``repro
    workers`` processes on the same host may drain the same store
    concurrently (WAL does not span machines — see the db module
    docstring).
    """

    #: Times a spec lost to a dying pool worker may be resubmitted
    #: before the grid gives up (satellite: BrokenProcessPool recovery).
    max_spec_retries = 2

    def __init__(self, parallel: int = 1,
                 cache: Optional[ResultCache] = None,
                 store=None) -> None:
        if parallel < 1:
            raise ConfigError(f"parallel must be >= 1, got {parallel}")
        self.parallel = parallel
        self.cache = cache
        self.store = store
        #: Simulations actually executed by this context (cache hits and
        #: store rows finished elsewhere excluded).
        self.simulations = 0
        #: Process pools rebuilt after a worker died (OOM-kill etc.).
        self.pool_rebuilds = 0

    # -- execution ---------------------------------------------------------
    def run_specs(self, specs: Sequence[RunSpec],
                  on_result: Optional[Callable[[int, RunSpec, object],
                                               None]] = None) -> List[object]:
        """Execute ``specs``, returning results in input order.

        Identical specs are simulated once and fanned back out.  With a
        cache attached, hits skip simulation; fresh results are stored.
        ``on_result(index, spec, result)`` streams each run back as it
        completes (indices arrive out of order under a pool; the returned
        list is always input-ordered).
        """
        results: List[object] = [None] * len(specs)
        pending: Dict[str, List[int]] = {}

        def deliver(indices: List[int], result) -> None:
            for i in indices:
                results[i] = result
                if on_result is not None:
                    on_result(i, specs[i], result)

        for i, spec in enumerate(specs):
            key = spec.cache_key()
            if key in pending:
                pending[key].append(i)
                continue
            if self.cache is not None:
                hit = self.cache.get(spec)
                if hit is not None:
                    deliver([i], hit)
                    continue
            pending[key] = [i]

        todo = [(indices, specs[indices[0]])
                for indices in pending.values()]
        if self.store is not None and todo:
            self._run_store(todo, deliver)
        elif len(todo) > 1 and self.parallel > 1:
            self._run_pool(todo, deliver)
        else:
            for indices, spec in todo:
                result = simulate(spec)
                self.simulations += 1
                if self.cache is not None:
                    self.cache.put(spec, result)
                deliver(indices, result)
        return results

    def _run_pool(self, todo, deliver) -> None:
        """Shard ``todo`` over a process pool, streaming completions.

        Robust to dying pool workers: an OOM-killed child breaks the
        whole ``ProcessPoolExecutor`` (every in-flight future raises
        :class:`BrokenProcessPool`), so the lost specs are resubmitted
        to a fresh pool up to :attr:`max_spec_retries` times each before
        the error propagates.  An interrupt cancels queued futures and
        re-raises (finished cells are already cached/delivered).
        """
        queue = [(indices, spec, 0) for indices, spec in todo]
        while queue:
            batch, queue = queue, []
            lost = self._pool_round(batch, deliver)
            if not lost:
                break
            for indices, spec, tries in lost:
                if tries + 1 > self.max_spec_retries:
                    raise BrokenProcessPool(
                        f"a pool worker died {tries + 1} times on spec "
                        f"{spec.cache_key()[:12]} "
                        f"({spec.app} x {spec.scheduler}); giving up")
                queue.append((indices, spec, tries + 1))
            self.pool_rebuilds += 1

    def _pool_round(self, batch, deliver) -> list:
        """One pool lifetime: run ``batch``, return items lost to a
        broken pool (empty list means the round completed)."""
        workers = min(self.parallel, len(batch))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = {}
        for item in batch:
            futures[pool.submit(simulate, item[1])] = item
        outstanding = set(futures)
        lost = []
        try:
            while outstanding:
                done, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
                while done:
                    fut = done.pop()
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        # The pool is gone: everything not yet delivered
                        # — this future, its unprocessed siblings left
                        # in `done`, and all outstanding ones — must be
                        # salvaged or requeued exactly once (popping as
                        # we deliver keeps finished futures out of the
                        # salvage set).  A future holding a genuine
                        # simulation error propagates it here rather
                        # than burning a requeue round on it.
                        lost.append(futures[fut])
                        for other in done | outstanding:
                            item = futures[other]
                            try:
                                salvaged = other.result(timeout=0)
                            except (BrokenProcessPool, CancelledError,
                                    FuturesTimeoutError):
                                lost.append(item)
                            else:
                                self._finish(item, salvaged, deliver)
                        return lost
                    self._finish(futures[fut], result, deliver)
        except (KeyboardInterrupt, SystemExit):
            for fut in outstanding:
                fut.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return lost

    def _finish(self, item, result, deliver) -> None:
        indices, spec, _tries = item
        self.simulations += 1
        if self.cache is not None:
            self.cache.put(spec, result)
        deliver(indices, result)

    # -- the durable store backend ----------------------------------------
    def _run_store(self, todo, deliver) -> None:
        """Drain ``todo`` through the experiment store's job queue.

        Rows already ``done`` in the store (a previous — possibly
        killed — run of the same sweep) are served without simulating;
        quarantined rows raise with their captured tracebacks after the
        rest of the grid completes.
        """
        import multiprocessing

        from repro.harness.db import QuarantinedError, drain, run_worker

        store = self.store
        keyed = {spec.cache_key(): (indices, spec)
                 for indices, spec in todo}
        store.add_specs([spec for _, spec in todo])
        helpers = []
        mp = multiprocessing.get_context()
        for _ in range(self.parallel - 1):
            proc = mp.Process(
                target=run_worker, args=(store.path,),
                kwargs={"max_attempts": store.max_attempts},
                daemon=True)
            proc.start()
            helpers.append(proc)
        try:
            self.simulations += drain(store)
        finally:
            for proc in helpers:
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join()
        statuses = store.statuses(keyed)
        failures = {key: store.get_error(key) or ""
                    for key, status in sorted(statuses.items())
                    if status == "failed"}
        if failures:
            raise QuarantinedError(failures)
        for key, (indices, spec) in keyed.items():
            result = store.get_result(key)
            if result is None:  # pragma: no cover - defensive
                raise ConfigError(
                    f"store row {key[:12]} vanished mid-sweep")
            if self.cache is not None:
                self.cache.put(spec, result)
            deliver(indices, result)

    def run_cells(self, requests: Sequence[CellRequest]) -> List[object]:
        """Execute a grid of cells; one :class:`CellResult` per request.

        The whole grid is flattened to runs first, so the pool shards
        across cells (not just within one cell's seeds).
        """
        from repro.harness.experiment import CellResult

        specs: List[RunSpec] = []
        slices: List[Tuple[int, int]] = []
        for req in requests:
            start = len(specs)
            specs.extend(req.to_specs())
            slices.append((start, len(specs)))
        flat = self.run_specs(specs)
        return [CellResult(runs=flat[start:stop])
                for start, stop in slices]


#: The active context; the serial, cache-less default reproduces the
#: original single-process behaviour exactly.
_current = ExecutionContext()


def current_context() -> ExecutionContext:
    """The execution context harness entry points route through."""
    return _current


@contextmanager
def execution(parallel: int = 1, cache_dir: Optional[str] = None,
              cache: Optional[ResultCache] = None,
              store=None, store_path: Optional[str] = None):
    """Install an :class:`ExecutionContext` for the enclosed block.

    ``with execution(parallel=4, cache_dir=".repro-cache"): fig5()``
    shards every cell fig5 runs over four processes and memoises them.
    ``store_path`` (or an open ``store``) routes the same cells through
    a durable :class:`~repro.harness.db.ExperimentStore` job queue
    instead — resumable after any crash, drainable by other worker
    processes on the same host.
    """
    global _current
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    owns_store = False
    if store is None and store_path is not None:
        from repro.harness.db import ExperimentStore
        store = ExperimentStore(store_path)
        owns_store = True
    ctx = ExecutionContext(parallel=parallel, cache=cache, store=store)
    previous = _current
    _current = ctx
    try:
        yield ctx
    finally:
        _current = previous
        if owns_store:
            store.close()


def run_cells(requests: Sequence[CellRequest]) -> List[object]:
    """Execute cells under the active context (module-level convenience)."""
    return current_context().run_cells(requests)
