"""Crash-resilient experiment store: a SQLite-backed multi-worker job queue.

The paper's evaluation is a grid of independent deterministic cells, and
million-cell parameter studies (schedulers x apps x cluster shapes x
fault plans x tune trials) need the grid itself to survive the same
failures the simulator injects: worker crashes, kills mid-write, and
restarts.  Following the py_experimenter pattern — experiments as
status-tracked rows in SQLite that independent workers pull, fill, and
survive crashes on — this module is the *job-level* mirror of the PR-1
task-level exactly-once ``TaskLedger``.

Three layers:

- :class:`ExperimentStore` — one WAL-mode SQLite file, one row per
  :class:`~repro.harness.parallel.RunSpec` keyed by its SHA-256
  ``cache_key()``.  Status machine ``pending -> leased -> done |
  failed``; results are the same pickled ``RunResult`` payload the
  :class:`~repro.harness.parallel.ResultCache` uses.  Every write is one
  transaction, retried with exponential backoff on ``database is
  locked`` so any number of processes on one host can share the file
  safely.
- **Leases + heartbeats** — :meth:`ExperimentStore.claim` atomically
  moves one pending row to ``leased`` under a time-bounded lease;
  :func:`drain` heartbeats the lease from a daemon thread while the
  simulation runs.  A worker that is SIGKILLed mid-cell simply stops
  heartbeating.
- **Reaper + quarantine** — :meth:`ExperimentStore.reap` re-opens rows
  whose lease expired without a heartbeat, bumping a per-row attempt
  count; a row that has burned ``max_attempts`` leases (a *poison cell*
  that crashes every worker that touches it) is quarantined as
  ``failed`` with its captured traceback instead of wedging the queue.

Exactly-once writes: :meth:`ExperimentStore.complete` is fenced by the
lease owner — a worker that lost its lease to the reaper (and whose row
may already be leased or done elsewhere) has its late result discarded,
so ``done`` rows are written exactly once and never re-simulated by a
restarted sweep.  Because cells are deterministic, either writer's
result would carry identical simulated statistics; the fence keeps the
bookkeeping (attempts, events) single-writer.

Store lifecycle events (``store_lease``, ``store_heartbeat_miss``,
``store_reclaim``, ``store_quarantine``) publish on the
:class:`~repro.obs.bus.EventBus` when one is attached via ``bus=``
(standalone mode: wall-clock timestamps, no runtime required).

Fleet observability (PR 7, ``repro.obs.fleet``): two more tables ride
in the same file.  ``worker_status`` keeps one row per worker identity —
state machine ``running -> idle | stopped | dead``, lifetime counters
(cells done/failed, leases taken, heartbeat misses / reclaims /
quarantines suffered) — updated inside the *same transactions* as the
lease operations that cause them, so ``repro top`` reads a consistent
live picture.  ``telemetry`` keeps one row per *completed* cell (obs
metrics snapshot, fault stats, wall time, trace shard path), inserted
by :meth:`ExperimentStore.complete` inside the lease-fenced ``done``
transaction — a cell that completes exactly once ships telemetry
exactly once, under any SIGKILL/restart schedule.

Scope: one host, many processes.  SQLite's WAL journal keeps its write
index in host-local shared memory (the ``-shm`` file ``mmap``-ed by
every connection), so two *machines* mounting one store over NFS/SMB
bypass each other's locking — the lease fence and exactly-once
guarantees no longer hold and the database itself can be corrupted.
Do not share a store file across hosts over a network filesystem;
run one store per host, or front a shared store with a single host's
``repro workers`` processes.  True multi-machine draining needs a
server-backed queue (future work, see ROADMAP).
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import socket
import sqlite3
import threading
import time
import traceback
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError, ReproError

#: Row status machine.  ``pending`` and ``leased`` are *open*;
#: ``done`` and ``failed`` are terminal.
STATUSES = ("pending", "leased", "done", "failed")

#: Bump when the experiments table layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS experiments (
    key            TEXT PRIMARY KEY,
    payload        TEXT NOT NULL,
    spec           BLOB NOT NULL,
    status         TEXT NOT NULL DEFAULT 'pending'
                   CHECK (status IN ('pending','leased','done','failed')),
    attempts       INTEGER NOT NULL DEFAULT 0,
    lease_owner    TEXT,
    lease_deadline REAL,
    heartbeat_at   REAL,
    result         BLOB,
    error          TEXT,
    created_at     REAL NOT NULL,
    finished_at    REAL
);
CREATE INDEX IF NOT EXISTS experiments_status
    ON experiments (status, created_at);
CREATE TABLE IF NOT EXISTS telemetry (
    key          TEXT PRIMARY KEY,
    owner        TEXT NOT NULL,
    attempt      INTEGER NOT NULL,
    wall_seconds REAL NOT NULL,
    finished_at  REAL NOT NULL,
    trace_path   TEXT,
    data         TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS worker_status (
    owner            TEXT PRIMARY KEY,
    host             TEXT,
    pid              INTEGER,
    state            TEXT NOT NULL DEFAULT 'idle'
                     CHECK (state IN ('running','idle','stopped','dead')),
    current_key      TEXT,
    started_at       REAL NOT NULL,
    last_seen        REAL NOT NULL,
    cells_done       INTEGER NOT NULL DEFAULT 0,
    cells_failed     INTEGER NOT NULL DEFAULT 0,
    leases           INTEGER NOT NULL DEFAULT 0,
    heartbeat_misses INTEGER NOT NULL DEFAULT 0,
    reclaims         INTEGER NOT NULL DEFAULT 0,
    quarantines      INTEGER NOT NULL DEFAULT 0
);
"""


class StoreError(ReproError):
    """The experiment store reached an unrecoverable state."""


class QuarantinedError(StoreError):
    """A sweep contains quarantined (poison) cells; carries their errors."""

    def __init__(self, failures: Dict[str, str]) -> None:
        self.failures = dict(failures)
        keys = ", ".join(k[:12] for k in sorted(failures))
        first = next(iter(failures.values())) or ""
        tail = first.strip().splitlines()[-1] if first.strip() else "?"
        super().__init__(
            f"{len(failures)} cell(s) quarantined after exhausting "
            f"max_attempts [{keys}]; first error: {tail}")


def _locked(exc: sqlite3.OperationalError) -> bool:
    """Whether ``exc`` is SQLite's transient cross-process contention."""
    msg = str(exc).lower()
    return "locked" in msg or "busy" in msg


def default_owner() -> str:
    """A globally unique worker identity: host, pid, and a random tag."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class ClaimedRow:
    """One leased row: the work a :func:`drain` iteration must do."""

    key: str
    spec: object  # the unpickled RunSpec
    attempt: int  # 1-based attempt number this lease represents


@dataclass(frozen=True)
class StoreRow:
    """Read-only row view for :meth:`ExperimentStore.rows` / ``repro query``."""

    key: str
    payload: Dict[str, object]
    status: str
    attempts: int
    lease_owner: Optional[str]
    error: Optional[str]
    created_at: float
    finished_at: Optional[float]


@dataclass(frozen=True)
class TelemetryRow:
    """One shipped per-cell telemetry record (``repro query --rollup``)."""

    key: str
    owner: str
    attempt: int
    wall_seconds: float
    finished_at: float
    trace_path: Optional[str]
    data: Dict[str, object]


@dataclass(frozen=True)
class WorkerRow:
    """One worker identity's live status and lifetime counters."""

    owner: str
    host: Optional[str]
    pid: Optional[int]
    state: str
    current_key: Optional[str]
    started_at: float
    last_seen: float
    cells_done: int
    cells_failed: int
    leases: int
    heartbeat_misses: int
    reclaims: int
    quarantines: int


def _owner_host_pid(owner: str):
    """Best-effort ``(host, pid)`` split of a ``default_owner`` identity."""
    parts = owner.split(":")
    if len(parts) >= 2 and parts[1].isdigit():
        return parts[0], int(parts[1])
    return None, None


class ExperimentStore:
    """A durable, concurrently-drainable queue of experiment cells.

    ``clock`` is injectable (tests drive lease expiry with a fake clock);
    everything else defaults to production behaviour.  The connection is
    shared across threads behind an internal mutex, so the heartbeat
    thread of :func:`drain` can extend leases while the main thread
    simulates.
    """

    def __init__(self, path: str, max_attempts: int = 3,
                 clock: Callable[[], float] = time.time,
                 bus=None, busy_retries: int = 8,
                 busy_base_sleep: float = 0.05,
                 timeout: float = 5.0) -> None:
        if max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.path = path
        self.max_attempts = max_attempts
        self.clock = clock
        self.bus = bus
        self.busy_retries = busy_retries
        self.busy_base_sleep = busy_base_sleep
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        # check_same_thread=False + self._lock: the drain heartbeat
        # thread shares this connection with the claiming thread.
        self._conn = sqlite3.connect(path, timeout=timeout,
                                     check_same_thread=False,
                                     isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # WAL survives kill -9 mid-commit (the journal replays or
            # rolls back atomically) and lets readers run during writes.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(STORE_SCHEMA_VERSION)))
        version = self._meta("schema_version")
        if version != str(STORE_SCHEMA_VERSION):
            raise StoreError(
                f"store {path} has schema version {version}, this "
                f"library expects {STORE_SCHEMA_VERSION}")

    # -- plumbing ----------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row["value"]

    def _txn(self, fn):
        """Run ``fn(conn)`` in one IMMEDIATE transaction, retrying
        ``database is locked`` with capped exponential backoff."""
        delay = self.busy_base_sleep
        for attempt in range(self.busy_retries + 1):
            try:
                with self._lock:
                    self._conn.execute("BEGIN IMMEDIATE")
                    try:
                        out = fn(self._conn)
                        self._conn.execute("COMMIT")
                    except BaseException:
                        # COMMIT itself can raise a transient busy error;
                        # always reset transaction state here or the
                        # retry's BEGIN IMMEDIATE dies with "cannot start
                        # a transaction within a transaction".
                        try:
                            self._conn.execute("ROLLBACK")
                        except sqlite3.OperationalError:
                            pass
                        raise
                    return out
            except sqlite3.OperationalError as exc:
                if not _locked(exc) or attempt == self.busy_retries:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _emit(self, kind: str, **fields) -> None:
        if self.bus is not None:
            self.bus.emit(kind, **fields)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- enqueue -----------------------------------------------------------
    def add_specs(self, specs: Sequence[object]) -> int:
        """Insert ``specs`` as pending rows; existing keys (including
        finished ones) are left untouched.  Returns the number added."""
        import json

        rows = []
        now = self.clock()
        for spec in specs:
            payload = json.dumps(spec.payload(), sort_keys=True,
                                 separators=(",", ":"))
            rows.append((spec.cache_key(), payload,
                         pickle.dumps(spec,
                                      protocol=pickle.HIGHEST_PROTOCOL),
                         now))

        def txn(conn) -> int:
            added = 0
            for row in rows:
                cur = conn.execute(
                    "INSERT OR IGNORE INTO experiments "
                    "(key, payload, spec, status, created_at) "
                    "VALUES (?, ?, ?, 'pending', ?)", row)
                added += cur.rowcount
            return added

        return self._txn(txn)

    # -- lease lifecycle ---------------------------------------------------
    def claim(self, owner: str, lease_seconds: float) -> Optional[ClaimedRow]:
        """Atomically lease the oldest pending row to ``owner``.

        Returns ``None`` when nothing is pending (other rows may still
        be leased elsewhere — check :meth:`open_count`).
        """
        now = self.clock()

        def txn(conn):
            row = conn.execute(
                "SELECT key, spec, attempts FROM experiments "
                "WHERE status = 'pending' "
                "ORDER BY created_at, key LIMIT 1").fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE experiments SET status = 'leased', "
                "lease_owner = ?, lease_deadline = ?, heartbeat_at = ?, "
                "attempts = attempts + 1 WHERE key = ?",
                (owner, now + lease_seconds, now, row["key"]))
            host, pid = _owner_host_pid(owner)
            conn.execute(
                "INSERT INTO worker_status (owner, host, pid, state, "
                "current_key, started_at, last_seen, leases) "
                "VALUES (?, ?, ?, 'running', ?, ?, ?, 1) "
                "ON CONFLICT(owner) DO UPDATE SET state = 'running', "
                "current_key = excluded.current_key, "
                "last_seen = excluded.last_seen, "
                "leases = worker_status.leases + 1",
                (owner, host, pid, row["key"], now, now))
            return ClaimedRow(key=row["key"],
                              spec=pickle.loads(row["spec"]),
                              attempt=row["attempts"] + 1)

        claimed = self._txn(txn)
        if claimed is not None:
            self._emit("store_lease", key=claimed.key, owner=owner,
                       attempt=claimed.attempt)
        return claimed

    def heartbeat(self, key: str, owner: str,
                  lease_seconds: float) -> bool:
        """Extend ``owner``'s lease on ``key``.  ``False`` means the
        lease was lost (reaped) — the worker should abandon the cell."""
        now = self.clock()

        def txn(conn) -> bool:
            cur = conn.execute(
                "UPDATE experiments SET lease_deadline = ?, "
                "heartbeat_at = ? WHERE key = ? AND status = 'leased' "
                "AND lease_owner = ?",
                (now + lease_seconds, now, key, owner))
            if cur.rowcount == 1:
                conn.execute(
                    "UPDATE worker_status SET last_seen = ? "
                    "WHERE owner = ?", (now, owner))
            return cur.rowcount == 1

        return self._txn(txn)

    def complete(self, key: str, owner: str, result: object,
                 telemetry: Optional[Dict[str, object]] = None,
                 trace_path: Optional[str] = None) -> bool:
        """Transactionally store ``result`` and mark the row ``done``.

        Fenced by the lease: a worker whose lease was reclaimed gets
        ``False`` and its result is discarded (the row is someone
        else's now), keeping ``done`` exactly-once.

        ``telemetry`` (a JSON-safe dict, see
        :func:`repro.obs.fleet.observe_run`) rides in the same fenced
        transaction as the status flip, so the ``telemetry`` table gets
        exactly one row per completed cell — a loser's telemetry is
        discarded along with its result.
        """
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        tel_json = (None if telemetry is None else
                    json.dumps(telemetry, sort_keys=True,
                               separators=(",", ":")))
        wall = (float(telemetry.get("wall_seconds", 0.0))
                if telemetry else 0.0)
        now = self.clock()

        def txn(conn) -> bool:
            row = conn.execute(
                "SELECT attempts FROM experiments WHERE key = ? "
                "AND status = 'leased' AND lease_owner = ?",
                (key, owner)).fetchone()
            if row is None:
                return False
            conn.execute(
                "UPDATE experiments SET status = 'done', result = ?, "
                "error = NULL, lease_owner = NULL, lease_deadline = NULL, "
                "finished_at = ? WHERE key = ?", (blob, now, key))
            conn.execute(
                "UPDATE worker_status SET state = 'idle', "
                "current_key = NULL, last_seen = ?, "
                "cells_done = cells_done + 1 WHERE owner = ?",
                (now, owner))
            if tel_json is not None:
                conn.execute(
                    "INSERT OR REPLACE INTO telemetry (key, owner, "
                    "attempt, wall_seconds, finished_at, trace_path, "
                    "data) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (key, owner, row["attempts"], wall, now, trace_path,
                     tel_json))
            return True

        return self._txn(txn)

    def fail(self, key: str, owner: str, error: str) -> str:
        """Record a worker-side crash of ``key`` (captured traceback).

        Returns the row's new status: ``pending`` (will be retried),
        ``failed`` (quarantined after ``max_attempts``), or ``lost``
        (the lease had already been reclaimed; nothing recorded).
        """
        now = self.clock()

        def txn(conn) -> str:
            row = conn.execute(
                "SELECT attempts FROM experiments WHERE key = ? "
                "AND status = 'leased' AND lease_owner = ?",
                (key, owner)).fetchone()
            if row is None:
                return "lost"
            status = ("failed" if row["attempts"] >= self.max_attempts
                      else "pending")
            conn.execute(
                "UPDATE experiments SET status = ?, error = ?, "
                "lease_owner = NULL, lease_deadline = NULL, "
                "finished_at = ? WHERE key = ?",
                (status, error, now if status == "failed" else None, key))
            conn.execute(
                "UPDATE worker_status SET state = 'idle', "
                "current_key = NULL, last_seen = ?, "
                "cells_failed = cells_failed + 1, "
                "quarantines = quarantines + ? WHERE owner = ?",
                (now, 1 if status == "failed" else 0, owner))
            return status

        status = self._txn(txn)
        if status == "failed":
            self._emit("store_quarantine", key=key,
                       attempts=self.max_attempts, error=_last_line(error))
        return status

    def release(self, key: str, owner: str) -> bool:
        """Voluntarily return a leased row to ``pending`` (graceful
        shutdown).  The attempt is refunded — an interrupt is not a
        strike against the cell."""

        now = self.clock()

        def txn(conn) -> bool:
            cur = conn.execute(
                "UPDATE experiments SET status = 'pending', "
                "lease_owner = NULL, lease_deadline = NULL, "
                "attempts = MAX(attempts - 1, 0) "
                "WHERE key = ? AND status = 'leased' AND lease_owner = ?",
                (key, owner))
            if cur.rowcount == 1:
                conn.execute(
                    "UPDATE worker_status SET state = 'stopped', "
                    "current_key = NULL, last_seen = ?, "
                    "leases = MAX(leases - 1, 0) WHERE owner = ?",
                    (now, owner))
            return cur.rowcount == 1

        return self._txn(txn)

    def reap(self, now: Optional[float] = None) -> List[str]:
        """Reclaim every leased row whose lease expired without a
        heartbeat (crashed / SIGKILLed worker).

        Rows with attempts left go back to ``pending``; rows that have
        burned ``max_attempts`` leases are quarantined as ``failed``.
        Returns the reclaimed (re-opened) keys.
        """
        now = self.clock() if now is None else now

        def txn(conn):
            rows = conn.execute(
                "SELECT key, lease_owner, lease_deadline, attempts "
                "FROM experiments WHERE status = 'leased' "
                "AND lease_deadline < ?", (now,)).fetchall()
            reclaimed, quarantined, events = [], [], []
            for row in rows:
                overdue = now - row["lease_deadline"]
                events.append(("store_heartbeat_miss",
                               dict(key=row["key"],
                                    owner=row["lease_owner"],
                                    overdue=round(overdue, 3))))
                poisoned = row["attempts"] >= self.max_attempts
                conn.execute(
                    "UPDATE worker_status SET state = 'dead', "
                    "current_key = NULL, "
                    "heartbeat_misses = heartbeat_misses + 1, "
                    "reclaims = reclaims + ?, "
                    "quarantines = quarantines + ? WHERE owner = ?",
                    (0 if poisoned else 1, 1 if poisoned else 0,
                     row["lease_owner"]))
                if poisoned:
                    error = (f"lease expired after attempt "
                             f"{row['attempts']}/{self.max_attempts} "
                             f"(owner {row['lease_owner']} presumed dead)")
                    conn.execute(
                        "UPDATE experiments SET status = 'failed', "
                        "error = COALESCE(error, ?), lease_owner = NULL, "
                        "lease_deadline = NULL, finished_at = ? "
                        "WHERE key = ?", (error, now, row["key"]))
                    quarantined.append(row["key"])
                    events.append(("store_quarantine",
                                   dict(key=row["key"],
                                        attempts=row["attempts"],
                                        error=error)))
                else:
                    conn.execute(
                        "UPDATE experiments SET status = 'pending', "
                        "lease_owner = NULL, lease_deadline = NULL "
                        "WHERE key = ?", (row["key"],))
                    reclaimed.append(row["key"])
                    events.append(("store_reclaim",
                                   dict(key=row["key"],
                                        owner=row["lease_owner"],
                                        attempt=row["attempts"])))
            return reclaimed, events

        reclaimed, events = self._txn(txn)
        for kind, fields in events:
            self._emit(kind, **fields)
        return reclaimed

    # -- reads -------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row count per status (every status present, zeros included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM experiments "
                "GROUP BY status").fetchall()
        out = {status: 0 for status in STATUSES}
        for row in rows:
            out[row["status"]] = row["n"]
        return out

    def open_count(self) -> int:
        """Rows still in flight (``pending`` + ``leased``)."""
        counts = self.counts()
        return counts["pending"] + counts["leased"]

    def statuses(self, keys: Iterable[str]) -> Dict[str, str]:
        """Status per key, for the keys that exist in the store."""
        out: Dict[str, str] = {}
        keys = list(keys)
        with self._lock:
            for start in range(0, len(keys), 500):
                chunk = keys[start:start + 500]
                marks = ",".join("?" * len(chunk))
                for row in self._conn.execute(
                        f"SELECT key, status FROM experiments "
                        f"WHERE key IN ({marks})", chunk):
                    out[row["key"]] = row["status"]
        return out

    def get_result(self, key: str):
        """The stored ``RunResult`` of a ``done`` row, else ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM experiments WHERE key = ? "
                "AND status = 'done'", (key,)).fetchone()
        if row is None or row["result"] is None:
            return None
        return pickle.loads(row["result"])

    def get_error(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT error FROM experiments WHERE key = ?",
                (key,)).fetchone()
        return None if row is None else row["error"]

    def rows(self, status: Optional[str] = None) -> List[StoreRow]:
        """Every row (oldest first), optionally filtered by status."""
        import json

        if status is not None and status not in STATUSES:
            raise ConfigError(
                f"unknown status {status!r}; known: {list(STATUSES)}")
        query = ("SELECT key, payload, status, attempts, lease_owner, "
                 "error, created_at, finished_at FROM experiments")
        params: tuple = ()
        if status is not None:
            query += " WHERE status = ?"
            params = (status,)
        query += " ORDER BY created_at, key"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [StoreRow(key=r["key"], payload=json.loads(r["payload"]),
                         status=r["status"], attempts=r["attempts"],
                         lease_owner=r["lease_owner"], error=r["error"],
                         created_at=r["created_at"],
                         finished_at=r["finished_at"]) for r in rows]

    def telemetry_rows(self,
                       keys: Optional[Iterable[str]] = None
                       ) -> List[TelemetryRow]:
        """Shipped telemetry, completion-ordered; optionally filtered to
        ``keys`` (e.g. the cells matching a ``repro query`` filter)."""
        query = ("SELECT key, owner, attempt, wall_seconds, finished_at, "
                 "trace_path, data FROM telemetry")
        params: tuple = ()
        if keys is not None:
            keys = list(keys)
            if not keys:
                return []
            marks = ",".join("?" * len(keys))
            query += f" WHERE key IN ({marks})"
            params = tuple(keys)
        query += " ORDER BY finished_at, key"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [TelemetryRow(key=r["key"], owner=r["owner"],
                             attempt=r["attempt"],
                             wall_seconds=r["wall_seconds"],
                             finished_at=r["finished_at"],
                             trace_path=r["trace_path"],
                             data=json.loads(r["data"]))
                for r in rows]

    def worker_rows(self) -> List[WorkerRow]:
        """Every worker identity that ever touched this store."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM worker_status "
                "ORDER BY started_at, owner").fetchall()
        return [WorkerRow(owner=r["owner"], host=r["host"], pid=r["pid"],
                          state=r["state"], current_key=r["current_key"],
                          started_at=r["started_at"],
                          last_seen=r["last_seen"],
                          cells_done=r["cells_done"],
                          cells_failed=r["cells_failed"],
                          leases=r["leases"],
                          heartbeat_misses=r["heartbeat_misses"],
                          reclaims=r["reclaims"],
                          quarantines=r["quarantines"]) for r in rows]

    def retire(self, owner: str) -> None:
        """Mark ``owner`` cleanly exited (drain loop finished/stopped).

        Workers the reaper already declared ``dead`` stay dead — a
        zombie's late retire must not cosmetically resurrect it.
        """
        now = self.clock()

        def txn(conn) -> None:
            conn.execute(
                "UPDATE worker_status SET state = 'stopped', "
                "current_key = NULL, last_seen = ? "
                "WHERE owner = ? AND state != 'dead'", (now, owner))

        self._txn(txn)


def _last_line(text: str) -> str:
    lines = [ln for ln in (text or "").strip().splitlines() if ln.strip()]
    return lines[-1] if lines else ""


# ---------------------------------------------------------------------------
# The worker pull loop.

def _heartbeat_loop(store: ExperimentStore, key: str, owner: str,
                    heartbeat_seconds: float, lease_seconds: float,
                    stop: threading.Event) -> None:
    """Daemon-thread body: extend the lease until told to stop or the
    lease is lost (reaped under us)."""
    while not stop.wait(heartbeat_seconds):
        try:
            if not store.heartbeat(key, owner, lease_seconds):
                return  # lease reclaimed; the result write will be fenced
        except sqlite3.OperationalError:
            # Transient contention beyond the retry budget: keep trying
            # on the next beat; the lease outlives several misses.
            continue


def run_claimed(store: ExperimentStore, row: ClaimedRow, owner: str,
                heartbeat_seconds: float, lease_seconds: float,
                fleet: Optional["object"] = None) -> bool:
    """Simulate one claimed cell, heartbeating throughout.

    Returns ``True`` iff this worker's result landed (the lease was
    still ours at commit time).  A simulation error is recorded via
    :meth:`ExperimentStore.fail` (retried or quarantined); an interrupt
    releases the lease and re-raises.

    With a :class:`repro.obs.fleet.FleetTelemetry` config the run is
    observed (metrics registry, optional trace shard) and the snapshot
    ships in the *same* transaction as the done flip, so telemetry is
    exactly-once alongside the result.
    """
    from repro.harness.parallel import simulate

    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(store, row.key, owner, heartbeat_seconds, lease_seconds,
              stop),
        name=f"store-heartbeat-{row.key[:8]}", daemon=True)
    beat.start()
    telemetry = trace_path = None
    try:
        if fleet is not None and getattr(fleet, "enabled", False):
            from repro.obs.fleet import observe_run
            result, telemetry, trace_path = observe_run(
                row.spec, row.key, owner, row.attempt, fleet)
        else:
            result = simulate(row.spec)
    except (KeyboardInterrupt, SystemExit):
        stop.set()
        beat.join()
        store.release(row.key, owner)
        raise
    except BaseException:
        stop.set()
        beat.join()
        store.fail(row.key, owner, traceback.format_exc())
        return False
    stop.set()
    beat.join()
    return store.complete(row.key, owner, result, telemetry=telemetry,
                          trace_path=trace_path)


def drain(store: ExperimentStore, owner: Optional[str] = None,
          heartbeat_seconds: float = 2.0,
          lease_seconds: Optional[float] = None,
          poll_seconds: float = 0.2,
          stop: Optional[threading.Event] = None,
          on_cell: Optional[Callable[[ClaimedRow, bool], None]] = None,
          fleet: Optional["object"] = None) -> int:
    """Pull-loop: claim, simulate, commit until the store has no open
    rows (or ``stop`` is set).  Any number of processes on the store's
    host may drain it concurrently (WAL does not span machines — see
    the module docstring).

    The loop doubles as the reaper: whenever it finds nothing pending it
    reclaims expired leases, so a sweep whose workers all died resumes
    the moment any one worker restarts.  Returns the number of cells
    this call completed.

    Telemetry ships by default (``fleet=None`` means a default-on
    :class:`repro.obs.fleet.FleetTelemetry`); pass
    ``FleetTelemetry(enabled=False)`` to opt out entirely.
    """
    owner = owner or default_owner()
    if fleet is None:
        from repro.obs.fleet import FleetTelemetry
        fleet = FleetTelemetry()
    lease = (lease_seconds if lease_seconds is not None
             else max(heartbeat_seconds * 5.0, 1.0))
    if lease <= heartbeat_seconds:
        raise ConfigError(
            f"lease_seconds ({lease}) must exceed heartbeat_seconds "
            f"({heartbeat_seconds}) or every live lease expires")
    stop = stop or threading.Event()
    completed = 0
    while not stop.is_set():
        row = store.claim(owner, lease)
        if row is None:
            store.reap()
            if store.open_count() == 0:
                break
            stop.wait(poll_seconds)
            continue
        landed = run_claimed(store, row, owner, heartbeat_seconds, lease,
                             fleet=fleet)
        completed += landed
        if on_cell is not None:
            on_cell(row, landed)
    store.retire(owner)
    return completed


@contextmanager
def graceful_signals():
    """Convert ``SIGTERM`` into :class:`KeyboardInterrupt` for the block.

    Long-running harness commands (``repro workers``, ``repro reproduce
    --parallel``) wrap their body in this so a ``kill`` (or a SIGINT)
    unwinds through the normal interrupt path — releasing held leases
    and cancelling queued futures — instead of dying with a bare
    traceback mid-write.  A no-op off the main thread (signal handlers
    can only be installed there).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _to_interrupt(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, _to_interrupt)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def run_worker(path: str, owner: Optional[str] = None,
               heartbeat_seconds: float = 2.0,
               lease_seconds: Optional[float] = None,
               poll_seconds: float = 0.2,
               max_attempts: int = 3,
               fleet: Optional["object"] = None) -> int:
    """Process entry point: open ``path`` and :func:`drain` it.

    Picklable by construction so it works as a ``multiprocessing``
    target (the ``repro workers`` CLI and the ``ExecutionContext`` store
    backend both spawn it).  SIGTERM/SIGINT release the held lease and
    exit cleanly instead of stranding it until lease expiry.
    """
    store = ExperimentStore(path, max_attempts=max_attempts)
    try:
        with graceful_signals():
            return drain(store, owner=owner,
                         heartbeat_seconds=heartbeat_seconds,
                         lease_seconds=lease_seconds,
                         poll_seconds=poll_seconds,
                         fleet=fleet)
    except KeyboardInterrupt:
        return 0  # lease already released by run_claimed
    finally:
        store.close()
