"""Experiment execution: one (app, scheduler, cluster, seeds) run.

The paper reports averages of ten executions (§VIII); the harness runs a
configurable number of scheduler seeds per cell and aggregates.  Speedups
are computed against the *sequential execution time*, which for the
simulator is the total task work of the (schedule-independent) task graph
— what a single worker with no scheduling overhead would take, matching
the paper's sequential-implementation baseline (Fig. 4).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cluster.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.cluster.topology import ClusterSpec
from repro.runtime.stats import RunStats


@dataclass
class RunResult:
    """One simulation run's interesting outputs."""

    app: str
    scheduler: str
    spec: ClusterSpec
    app_seed: int
    sched_seed: int
    stats: RunStats
    wall_seconds: float

    @property
    def sequential_cycles(self) -> float:
        """Total task work = the sequential-baseline execution time."""
        return self.stats.work_sum_cycles

    @property
    def speedup(self) -> float:
        """Speedup over the sequential baseline."""
        if self.stats.makespan_cycles <= 0:
            return 0.0
        return self.sequential_cycles / self.stats.makespan_cycles

    @property
    def makespan_ms(self) -> float:
        return self.stats.makespan_cycles / DEFAULT_COST_MODEL.cycles_per_ms


@dataclass
class CellResult:
    """Aggregate over several scheduler seeds of the same cell."""

    runs: List[RunResult] = field(default_factory=list)

    def _vals(self, fn: Callable[[RunResult], float]) -> List[float]:
        return [fn(r) for r in self.runs]

    @property
    def mean_speedup(self) -> float:
        return statistics.fmean(self._vals(lambda r: r.speedup))

    @property
    def mean_makespan_ms(self) -> float:
        return statistics.fmean(self._vals(lambda r: r.makespan_ms))

    def mean(self, fn: Callable[[RunResult], float]) -> float:
        return statistics.fmean(self._vals(fn))


def run_once(app_name: str, scheduler: str,
             spec: Optional[ClusterSpec] = None,
             app_seed: int = 12345, sched_seed: int = 1,
             scale: str = "bench",
             costs: CostModel = DEFAULT_COST_MODEL,
             validate: bool = True,
             sched_kwargs: Optional[dict] = None,
             app_overrides: Optional[dict] = None,
             fault_plan=None) -> RunResult:
    """Run one (app, scheduler, cluster) cell once.

    ``fault_plan`` (a resolved :class:`~repro.faults.plan.FaultPlan`)
    attaches a fault injector to the run, for scripted chaos experiments;
    the default ``None`` keeps the cell on the fault-free fast path.

    Routes through the active :mod:`repro.harness.parallel` execution
    context: with a result cache installed, a repeated run (same app,
    scheduler, cluster, seeds, cost model, fault plan) is served from
    disk instead of re-simulating.
    """
    from repro.harness.parallel import RunSpec, current_context

    run_spec = RunSpec.build(
        app_name, scheduler, spec, app_seed=app_seed,
        sched_seed=sched_seed, scale=scale, costs=costs,
        validate=validate, sched_kwargs=sched_kwargs,
        app_overrides=app_overrides, fault_plan=fault_plan)
    return current_context().run_specs([run_spec])[0]


def run_cell(app_name: str, scheduler: str,
             spec: Optional[ClusterSpec] = None,
             app_seed: int = 12345,
             sched_seeds: Sequence[int] = (1, 2, 3),
             scale: str = "bench",
             costs: CostModel = DEFAULT_COST_MODEL,
             validate: bool = True,
             sched_kwargs: Optional[dict] = None,
             app_overrides: Optional[dict] = None) -> CellResult:
    """Run a cell once per scheduler seed and aggregate.

    Only the first seed validates application output (validating every
    repetition of a deterministic app is redundant).  The cell executes
    under the active execution context, so its seeds shard over the
    process pool and hit the result cache when one is installed.
    """
    from repro.harness.parallel import CellRequest, current_context

    request = CellRequest.build(
        app_name, scheduler, spec, sched_seeds=sched_seeds,
        app_seed=app_seed, scale=scale, costs=costs, validate=validate,
        sched_kwargs=sched_kwargs, app_overrides=app_overrides)
    return current_context().run_cells([request])[0]
