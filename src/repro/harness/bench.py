"""Kernel performance benchmark: the repo's perf trajectory baseline.

``run_grid`` executes a fixed (application x scheduler) grid of
simulations and measures, per cell:

- **wall-clock seconds** (best of N repeats — the headline metric);
- **events/sec** (heap events processed per wall-clock second, when the
  engine exposes :attr:`Environment.events_processed`);
- **simulated observables** (makespan, tasks executed, total steals) —
  these are deterministic and double as a drift guard: a kernel change
  that alters them is a correctness bug, not a perf difference;
- **peak RSS** (``ru_maxrss``; process-lifetime monotone, so later cells
  report the running maximum).

The report also records a **calibration score**: a fixed pure-Python
workload timed on the same interpreter/machine.  Comparing wall-clock
across machines is meaningless in absolute terms, so ``compare``
normalizes candidate wall times by the calibration ratio before applying
the regression threshold — the committed ``BENCH_kernel.json`` baseline
stays useful on any CI runner.

Timing fields (``wall_seconds``, ``best_wall_seconds``,
``events_per_sec``, ``peak_rss_kb``, ``calibration_ops_per_sec``) vary
run to run; everything else in the report is byte-deterministic.
"""

from __future__ import annotations

import json
import resource
import time
from typing import Dict, List, Optional, Tuple

SCHEMA_VERSION = 1

#: The default grid: steal-heavy irregular trees (uts), barrier-phased
#: ring exchange with heavy idle park/wake churn (turing), and a flat
#: embarrassingly-parallel sweep (mcpi), across the scheduler families
#: (board-driven DistWS, shared-deque X10WS, blind lifeline stealing).
DEFAULT_GRID: List[Dict] = [
    {"app": "uts", "scheduler": "DistWS", "places": 16, "workers": 8,
     "scale": "bench"},
    {"app": "uts", "scheduler": "X10WS", "places": 16, "workers": 8,
     "scale": "bench"},
    {"app": "uts", "scheduler": "Lifeline", "places": 16, "workers": 8,
     "scale": "bench"},
    {"app": "turing", "scheduler": "DistWS", "places": 16, "workers": 8,
     "scale": "bench"},
    {"app": "turing", "scheduler": "X10WS", "places": 16, "workers": 8,
     "scale": "bench"},
    {"app": "mcpi", "scheduler": "DistWS", "places": 16, "workers": 8,
     "scale": "bench"},
    # Raw kernel dispatch throughput: no runtime, no scheduler — just the
    # event heap and the handle-based resume path, the surface the flat
    # kernel rebuilt.  The app cells above measure the *simulator*
    # (dominated by task bodies and policy code); this cell isolates the
    # events/sec ceiling of the kernel itself.
    {"app": "kernelspin", "scheduler": "flat", "places": 1, "workers": 4,
     "scale": "bench", "events": 2_000_000},
]

#: CI-sized subset: sub-second cells, same code paths.
QUICK_GRID: List[Dict] = [
    {"app": "uts", "scheduler": "DistWS", "places": 8, "workers": 4,
     "scale": "test"},
    {"app": "turing", "scheduler": "DistWS", "places": 8, "workers": 4,
     "scale": "test"},
    {"app": "uts", "scheduler": "Lifeline", "places": 8, "workers": 4,
     "scale": "test"},
]

APP_SEED = 12345
SCHED_SEED = 1


def cell_key(cell: Dict) -> str:
    """Stable identifier for one grid cell."""
    return (f"{cell['app']}|{cell['scheduler']}|{cell['places']}x"
            f"{cell['workers']}|{cell['scale']}")


def calibrate(rounds: int = 3) -> float:
    """Machine-speed score: ops/sec of a fixed pure-Python workload.

    The workload (integer arithmetic + list/dict traffic) roughly matches
    the simulator's instruction mix, so the ratio between two machines'
    scores predicts the ratio of their simulation wall times well enough
    for a coarse regression gate.
    """
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        table: Dict[int, int] = {}
        items: List[int] = []
        for i in range(200_000):
            acc += i * 3 + (i >> 2)
            if i & 7 == 0:
                table[i & 1023] = acc
                items.append(i)
                if len(items) > 64:
                    items.pop(0)
        best = min(best, time.perf_counter() - t0)
    return 200_000 / best


def run_spin_cell(cell: Dict, repeats: int = 3) -> Dict:
    """Measure raw kernel dispatch: N sleep-resume events, no runtime.

    ``workers`` concurrent spinner processes share every due time, so the
    run loop's same-cycle batch drain is exercised on each clock step;
    each event is one heap pop plus one handle-armed generator resume —
    the kernel's hottest path stripped of simulator logic.
    """
    from repro.sim.engine import Environment

    n_events = int(cell.get("events", 2_000_000))
    n_spinners = max(1, int(cell["workers"]))
    per = n_events // n_spinners
    walls: List[float] = []
    events = 0
    now = 0.0
    for _ in range(max(1, repeats)):
        env = Environment()

        def spinner(env: "Environment" = env, per: int = per):
            sleep = env.sleep
            for _ in range(per):
                yield sleep(1.0)

        for _ in range(n_spinners):
            env.process(spinner())
        t0 = time.perf_counter()
        env.run()
        walls.append(time.perf_counter() - t0)
        events = env.events_processed
        now = env.now
    best = min(walls)
    return {
        "cell": cell_key(cell),
        "config": dict(cell),
        "repeats": len(walls),
        "wall_seconds": [round(w, 6) for w in walls],
        "best_wall_seconds": round(best, 6),
        # Deterministic observables, same schema as the app cells: the
        # drift guard catches a kernel change that alters event accounting.
        "simulated": {"makespan_cycles": now, "tasks_executed": 0,
                      "total_steals": 0},
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "events_processed": events,
        "events_per_sec": round(events / best, 1),
    }


def run_cell(cell: Dict, repeats: int = 3) -> Dict:
    """Run one grid cell ``repeats`` times; report best wall + observables."""
    from repro import ClusterSpec, SimRuntime, make_scheduler
    from repro.apps import make_app
    from repro.runtime.task import _reset_task_ids

    if cell["app"] == "kernelspin":
        return run_spin_cell(cell, repeats=repeats)

    walls: List[float] = []
    events: Optional[int] = None
    sim: Dict[str, object] = {}
    for _ in range(max(1, repeats)):
        _reset_task_ids()
        spec = ClusterSpec(n_places=cell["places"],
                           workers_per_place=cell["workers"],
                           max_threads=cell["workers"] + 4)
        rt = SimRuntime(spec, make_scheduler(cell["scheduler"]),
                        seed=cell.get("sched_seed", SCHED_SEED))
        app = make_app(cell["app"], scale=cell["scale"],
                       seed=cell.get("app_seed", APP_SEED))
        t0 = time.perf_counter()
        stats = app.run(rt, validate=False)
        walls.append(time.perf_counter() - t0)
        events = getattr(rt.env, "events_processed", None)
        sim = {
            "makespan_cycles": stats.makespan_cycles,
            "tasks_executed": stats.tasks_executed,
            "total_steals": stats.steals.total_steals,
        }
    best = min(walls)
    out: Dict[str, object] = {
        "cell": cell_key(cell),
        "config": dict(cell),
        "repeats": len(walls),
        "wall_seconds": [round(w, 6) for w in walls],
        "best_wall_seconds": round(best, 6),
        "simulated": sim,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if events is not None:
        out["events_processed"] = events
        out["events_per_sec"] = round(events / best, 1)
    return out


def profile_cell(cell: Dict, top_n: int = 25) -> str:
    """Run one grid cell once under ``cProfile``; return the hot functions.

    The profiled run is *separate* from any timed run — instrumentation
    inflates wall time several-fold, so profile output and timing reports
    must never mix.  Functions are ranked by ``tottime`` (self time), the
    ranking that points at the simulator's actual hot loops rather than
    the call-graph roots that merely contain them.
    """
    import cProfile
    import io
    import pstats

    from repro import ClusterSpec, SimRuntime, make_scheduler
    from repro.apps import make_app
    from repro.runtime.task import _reset_task_ids

    _reset_task_ids()
    spec = ClusterSpec(n_places=cell["places"],
                       workers_per_place=cell["workers"],
                       max_threads=cell["workers"] + 4)
    rt = SimRuntime(spec, make_scheduler(cell["scheduler"]),
                    seed=cell.get("sched_seed", SCHED_SEED))
    app = make_app(cell["app"], scale=cell["scale"],
                   seed=cell.get("app_seed", APP_SEED))
    prof = cProfile.Profile()
    prof.enable()
    app.run(rt, validate=False)
    prof.disable()
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("tottime").print_stats(top_n)
    events = getattr(rt.env, "events_processed", None)
    head = f"=== profile: {cell_key(cell)}"
    if events is not None:
        head += f" ({events} events)"
    return head + " ===\n" + buf.getvalue()


def run_grid(cells: List[Dict], repeats: int = 3) -> Dict:
    """Run the whole grid and assemble the benchmark report."""
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "benchmark": "kernel",
        "calibration_ops_per_sec": round(calibrate(), 1),
        "cells": [],
    }
    total = 0.0
    for cell in cells:
        row = run_cell(cell, repeats=repeats)
        report["cells"].append(row)
        total += row["best_wall_seconds"]
    report["total_wall_seconds"] = round(total, 6)
    return report


def compare(baseline: Dict, candidate: Dict,
            max_regression_pct: float = 20.0) -> Tuple[bool, List[str]]:
    """Gate ``candidate`` against ``baseline``.

    Wall-clock is compared after normalizing by the calibration ratio
    (candidate measured on a machine 2x faster than the baseline's is
    scaled back up 2x).  Simulated observables must match *exactly* —
    any drift is reported as a failure regardless of the threshold.
    """
    lines: List[str] = []
    ok = True
    cal_base = float(baseline.get("calibration_ops_per_sec") or 0.0)
    cal_cand = float(candidate.get("calibration_ops_per_sec") or 0.0)
    speed_ratio = (cal_cand / cal_base) if cal_base and cal_cand else 1.0
    lines.append(f"calibration ratio (candidate/baseline machine speed): "
                 f"{speed_ratio:.3f}")
    base_cells = {c["cell"]: c for c in baseline.get("cells", [])}
    norm_total = 0.0
    base_total = 0.0
    for row in candidate.get("cells", []):
        base = base_cells.get(row["cell"])
        if base is None:
            lines.append(f"  {row['cell']}: not in baseline (skipped)")
            continue
        if row["simulated"] != base["simulated"]:
            ok = False
            lines.append(f"  {row['cell']}: SIMULATED METRICS DRIFTED "
                         f"{base['simulated']} -> {row['simulated']}")
            continue
        norm = row["best_wall_seconds"] * speed_ratio
        pct = 100.0 * (norm - base["best_wall_seconds"]) \
            / base["best_wall_seconds"]
        norm_total += norm
        base_total += base["best_wall_seconds"]
        lines.append(f"  {row['cell']}: {base['best_wall_seconds']:.3f}s -> "
                     f"{norm:.3f}s normalized ({pct:+.1f}%)")
    if base_total > 0:
        total_pct = 100.0 * (norm_total - base_total) / base_total
        lines.append(f"grid total: {base_total:.3f}s -> {norm_total:.3f}s "
                     f"normalized ({total_pct:+.1f}%), "
                     f"threshold +{max_regression_pct:g}%")
        if total_pct > max_regression_pct:
            ok = False
            lines.append("FAIL: wall-clock regression over threshold")
    else:
        lines.append("no comparable cells")
    return ok, lines


def render(report: Dict) -> str:
    """Human-readable table of a benchmark report."""
    from repro.harness.tables import render_table
    rows = []
    for row in report["cells"]:
        sim = row["simulated"]
        rows.append([
            row["cell"],
            f"{row['best_wall_seconds']:.3f}",
            f"{row.get('events_per_sec', '-')}",
            f"{sim['tasks_executed']}",
            f"{row['peak_rss_kb']}",
        ])
    table = render_table(
        ["cell", "best wall (s)", "events/sec", "tasks", "peak RSS (KB)"],
        rows, title="kernel benchmark")
    return (f"{table}\n\ntotal wall: {report['total_wall_seconds']:.3f}s   "
            f"calibration: {report['calibration_ops_per_sec']:.0f} ops/s")


def to_json(report: Dict) -> str:
    """Canonical serialization (sorted keys, 1-space indent)."""
    return json.dumps(report, sort_keys=True, indent=1) + "\n"
