"""The per-experiment registry: every table and figure of the paper.

Each ``fig*``/``table*`` function runs the experiment matrix and returns
an :class:`ExperimentOutput` holding structured rows plus a rendered text
artifact.  The benchmarks under ``benchmarks/`` call these with reduced
repetition counts; ``examples/reproduce_paper.py`` runs them all.

Every function declares its whole (app x scheduler x cluster x seed)
grid up front and executes it through
:func:`repro.harness.parallel.run_cells`, so an enclosing
``with execution(parallel=N, cache_dir=...)`` block shards the grid over
a process pool and memoises finished cells — results stay byte-identical
to serial execution for the same seeds.

Paper artifacts covered:

========  ==========================================================
fig3      steals-to-task ratio per benchmark (DistWS, 128 workers)
fig4      sequential execution time per benchmark
fig5      speedup vs worker count, X10WS vs DistWS
table1    task granularities (ms)
table2    L1 data-cache miss rates (%), three schedulers
table3    messages transmitted across nodes, three schedulers
fig6      speedups of X10WS / DistWS-NS / DistWS at 128 workers
fig7      per-node CPU utilization, three schedulers
chunk     §VIII.2 steal-chunk-size study + micro-app granularity study
uts       §X UTS: DistWS vs randomized stealing vs lifeline
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps import PAPER_APPS
from repro.apps.micro import MICRO_APPS
from repro.cluster.costmodel import DEFAULT_COST_MODEL
from repro.cluster.topology import ClusterSpec, paper_cluster, worker_sweep
from repro.harness.experiment import CellResult
from repro.harness.figures import bar_chart, grouped_bars, series_lines
from repro.harness.parallel import CellRequest, run_cells
from repro.harness.tables import render_table
from repro.tune.space import accepted_kwargs

#: The three schedulers of Tables II/III and Figs. 6/7.
MAIN_SCHEDULERS = ("X10WS", "DistWS-NS", "DistWS")


@dataclass
class ExperimentOutput:
    """Structured result + rendered text for one paper artifact."""

    experiment: str
    headers: List[str]
    rows: List[list]
    rendered: str
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.rendered


def _ms(cycles: float) -> float:
    return cycles / DEFAULT_COST_MODEL.cycles_per_ms


# ---------------------------------------------------------------------------
def fig3(apps: Sequence[str] = PAPER_APPS, sched_seeds=(1,),
         scale: str = "bench", sched_kwargs=None) -> ExperimentOutput:
    """Fig. 3: steals-to-task ratio (DistWS at 128 workers)."""
    cells = run_cells([CellRequest.build(
        app, "DistWS", paper_cluster(), sched_seeds=sched_seeds,
        scale=scale, sched_kwargs=accepted_kwargs("DistWS", sched_kwargs))
        for app in apps])
    rows = []
    for app, cell in zip(apps, cells):
        stats = cell.runs[0].stats
        remote = stats.steals.remote_hits
        rows.append([app, stats.steals.total_steals, remote,
                     stats.tasks_executed, stats.steals_to_task_ratio,
                     remote / max(stats.tasks_executed, 1)])
    rendered = render_table(
        ["app", "steals", "remote", "tasks", "steals/task",
         "remote/task"], rows,
        title="Fig. 3 — steals-to-task ratio (DistWS, 128 workers)")
    return ExperimentOutput(
        "fig3",
        ["app", "steals", "remote", "tasks", "ratio", "remote_ratio"],
        rows, rendered)


def fig4(apps: Sequence[str] = PAPER_APPS,
         scale: str = "bench", sched_kwargs=None) -> ExperimentOutput:
    """Fig. 4: sequential execution time per application."""
    one_worker = ClusterSpec(n_places=1, workers_per_place=1,
                             max_threads=2)
    cells = run_cells([CellRequest.build(
        app, "X10WS", one_worker, sched_seeds=(1,), scale=scale,
        sched_kwargs=accepted_kwargs("X10WS", sched_kwargs))
        for app in apps])
    rows = []
    for app, cell in zip(apps, cells):
        run = cell.runs[0]
        rows.append([app, _ms(run.sequential_cycles),
                     _ms(run.stats.makespan_cycles)])
    rendered = render_table(
        ["app", "sequential (ms)", "1-worker makespan (ms)"], rows,
        title="Fig. 4 — sequential execution time")
    return ExperimentOutput("fig4", ["app", "seq_ms", "one_worker_ms"],
                            rows, rendered)


def fig5(apps: Sequence[str] = PAPER_APPS,
         worker_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
         sched_seeds=(1, 2), scale: str = "bench",
         sched_kwargs=None) -> ExperimentOutput:
    """Fig. 5: speedup vs worker count for X10WS and DistWS."""
    rows = []
    series: Dict[str, Dict[str, List[float]]] = {}
    specs = worker_sweep(worker_counts)
    grid = [(app, spec, sched)
            for app in apps
            for spec in specs
            for sched in ("X10WS", "DistWS")]
    cells = run_cells([CellRequest.build(
        app, sched, spec, sched_seeds=sched_seeds, scale=scale,
        sched_kwargs=accepted_kwargs(sched, sched_kwargs))
        for app, spec, sched in grid])
    for app in apps:
        series[app] = {"X10WS": [], "DistWS": []}
    for (app, spec, sched), cell in zip(grid, cells):
        sp = cell.mean_speedup
        series[app][sched].append(sp)
        rows.append([app, sched, spec.total_workers, sp,
                     cell.mean_makespan_ms])
    blocks = []
    for app in apps:
        blocks.append(series_lines(
            list(worker_counts), series[app],
            title=f"Fig. 5 — {app}: speedup vs workers"))
    rendered = "\n\n".join(blocks)
    return ExperimentOutput(
        "fig5", ["app", "sched", "workers", "speedup", "makespan_ms"],
        rows, rendered, extra={"series": series})


def table1(apps: Sequence[str] = PAPER_APPS,
           scale: str = "bench", sched_kwargs=None) -> ExperimentOutput:
    """Table I: mean task granularities (ms)."""
    cells = run_cells([CellRequest.build(
        app, "DistWS", paper_cluster(), sched_seeds=(1,), scale=scale,
        sched_kwargs=accepted_kwargs("DistWS", sched_kwargs))
        for app in apps])
    rows = []
    for app, cell in zip(apps, cells):
        stats = cell.runs[0].stats
        rows.append([app, _ms(stats.mean_task_granularity_cycles)])
    rendered = render_table(["app", "granularity (ms)"], rows,
                            title="Table I — task granularities")
    return ExperimentOutput("t1", ["app", "granularity_ms"], rows,
                            rendered)


def _three_scheduler_matrix(apps, sched_seeds, scale, sched_kwargs=None):
    grid = [(app, sched) for app in apps for sched in MAIN_SCHEDULERS]
    results = run_cells([CellRequest.build(
        app, sched, paper_cluster(), sched_seeds=sched_seeds, scale=scale,
        sched_kwargs=accepted_kwargs(sched, sched_kwargs))
        for app, sched in grid])
    cells: Dict[tuple, CellResult] = dict(zip(grid, results))
    return cells


def table2(apps: Sequence[str] = PAPER_APPS, sched_seeds=(1,),
           scale: str = "bench", cells: Optional[dict] = None,
           sched_kwargs=None) -> ExperimentOutput:
    """Table II: L1 data-cache miss rates (%) at 128 workers."""
    cells = cells or _three_scheduler_matrix(apps, sched_seeds, scale,
                                             sched_kwargs)
    rows = []
    for app in apps:
        rows.append([app] + [
            100 * cells[(app, s)].mean(lambda r: r.stats.l1_miss_rate)
            for s in MAIN_SCHEDULERS])
    rendered = render_table(["app", *MAIN_SCHEDULERS], rows,
                            title="Table II — L1d miss rates (%)")
    return ExperimentOutput("t2", ["app", *MAIN_SCHEDULERS], rows,
                            rendered)


def table3(apps: Sequence[str] = PAPER_APPS, sched_seeds=(1,),
           scale: str = "bench", cells: Optional[dict] = None,
           sched_kwargs=None) -> ExperimentOutput:
    """Table III: messages transmitted across nodes at 128 workers."""
    cells = cells or _three_scheduler_matrix(apps, sched_seeds, scale,
                                             sched_kwargs)
    rows = []
    for app in apps:
        rows.append([app] + [
            int(cells[(app, s)].mean(lambda r: r.stats.messages))
            for s in MAIN_SCHEDULERS])
    rendered = render_table(["app", *MAIN_SCHEDULERS], rows,
                            title="Table III — messages across nodes")
    return ExperimentOutput("t3", ["app", *MAIN_SCHEDULERS], rows,
                            rendered)


def fig6(apps: Sequence[str] = PAPER_APPS, sched_seeds=(1, 2),
         scale: str = "bench", cells: Optional[dict] = None,
         sched_kwargs=None) -> ExperimentOutput:
    """Fig. 6: speedups of the three schedulers at 128 workers."""
    cells = cells or _three_scheduler_matrix(apps, sched_seeds, scale,
                                             sched_kwargs)
    rows = []
    series = {s: [] for s in MAIN_SCHEDULERS}
    for app in apps:
        vals = [cells[(app, s)].mean_speedup for s in MAIN_SCHEDULERS]
        rows.append([app] + vals)
        for s, v in zip(MAIN_SCHEDULERS, vals):
            series[s].append(v)
    rendered = grouped_bars(list(apps), series,
                            title="Fig. 6 — speedups at 128 workers")
    return ExperimentOutput("fig6", ["app", *MAIN_SCHEDULERS], rows,
                            rendered, extra={"series": series})


def fig7(apps: Sequence[str] = PAPER_APPS, sched_seeds=(1,),
         scale: str = "bench", cells: Optional[dict] = None,
         sched_kwargs=None) -> ExperimentOutput:
    """Fig. 7: per-node CPU utilization under the three schedulers."""
    cells = cells or _three_scheduler_matrix(apps, sched_seeds, scale,
                                             sched_kwargs)
    rows = []
    blocks = []
    for app in apps:
        per_sched = {}
        for s in MAIN_SCHEDULERS:
            stats = cells[(app, s)].runs[0].stats
            util = stats.node_utilization()
            per_sched[s] = util
            rows.append([app, s, stats.utilization_mean(),
                         stats.utilization_spread(),
                         stats.utilization_stdev()])
        blocks.append(series_lines(
            list(range(len(per_sched["DistWS"]))), per_sched,
            title=f"Fig. 7 — {app}: per-node utilization"))
    rendered = "\n\n".join(blocks)
    return ExperimentOutput(
        "fig7", ["app", "sched", "mean", "spread", "stdev"], rows,
        rendered)


def chunk_study(chunks: Sequence[int] = (1, 2, 4, 8),
                app: str = "turing", sched_seeds=(1, 2),
                scale: str = "bench", sched_kwargs=None) -> ExperimentOutput:
    """§VIII.2a: how the distributed steal chunk size affects makespan."""
    base = accepted_kwargs("DistWS", sched_kwargs) or {}
    cells = run_cells([CellRequest.build(
        app, "DistWS", paper_cluster(), sched_seeds=sched_seeds,
        scale=scale, sched_kwargs={**base, "remote_chunk_size": c})
        for c in chunks])
    rows = [[c, cell.mean_makespan_ms, cell.mean_speedup]
            for c, cell in zip(chunks, cells)]
    rendered = render_table(
        ["chunk", "makespan (ms)", "speedup"], rows,
        title=f"§VIII.2 — steal chunk size study ({app})")
    return ExperimentOutput("chunk", ["chunk", "makespan_ms", "speedup"],
                            rows, rendered)


def granularity_study(sched_seeds=(1,), scale: str = "bench",
                      sched_kwargs=None) -> ExperimentOutput:
    """§VIII.2b: DistWS vs X10WS on the five fine-grained micro apps.

    The paper: "The DistWS algorithm performed worse on these smaller
    applications" — fine tasks cannot amortise distributed-steal costs.
    """
    grid = [(cls, sched) for cls in MICRO_APPS
            for sched in ("X10WS", "DistWS")]
    cells = run_cells([CellRequest.build(
        cls.name, sched, paper_cluster(), sched_seeds=sched_seeds,
        scale=scale, sched_kwargs=accepted_kwargs(sched, sched_kwargs))
        for cls, sched in grid])
    per_app = {}
    for (cls, sched), cell in zip(grid, cells):
        per_app.setdefault(cls, {})[sched] = cell.mean_makespan_ms
    rows = []
    for cls in MICRO_APPS:
        per = per_app[cls]
        rows.append([cls.name, cls.granularity_ms, per["X10WS"],
                     per["DistWS"],
                     100 * (per["X10WS"] / per["DistWS"] - 1)])
    rendered = render_table(
        ["app", "granularity (ms)", "X10WS (ms)", "DistWS (ms)",
         "DistWS gain (%)"], rows,
        title="§VIII.2 — micro-app granularity study")
    return ExperimentOutput(
        "granularity",
        ["app", "granularity_ms", "x10ws_ms", "distws_ms", "gain_pct"],
        rows, rendered)


def uts_study(sched_seeds=(1, 2), scale: str = "bench",
              sched_kwargs=None) -> ExperimentOutput:
    """§X: UTS under DistWS vs randomized stealing vs lifelines."""
    schedulers = ("RandomWS", "DistWS", "Lifeline")
    cells = run_cells([CellRequest.build(
        "uts", sched, paper_cluster(), sched_seeds=sched_seeds,
        scale=scale, sched_kwargs=accepted_kwargs(sched, sched_kwargs))
        for sched in schedulers])
    rows = [[sched, cell.mean_makespan_ms, cell.mean_speedup]
            for sched, cell in zip(schedulers, cells)]
    base = rows[0][1]
    for row in rows:
        row.append(100 * (base / row[1] - 1))
    rendered = render_table(
        ["scheduler", "makespan (ms)", "speedup", "vs RandomWS (%)"],
        rows, title="§X — UTS: steal-strategy comparison")
    return ExperimentOutput(
        "uts", ["scheduler", "makespan_ms", "speedup", "vs_random_pct"],
        rows, rendered)


#: All paper artifacts by id (used by the reproduce-everything example).
EXPERIMENTS = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "fig6": fig6,
    "fig7": fig7,
    "chunk": chunk_study,
    "granularity": granularity_study,
    "uts": uts_study,
}
