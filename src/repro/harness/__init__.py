"""Benchmark harness: experiment runner + the paper's table/figure registry."""

from repro.harness.experiment import CellResult, RunResult, run_cell, run_once
from repro.harness.figures import bar_chart, grouped_bars, series_lines
from repro.harness.parallel import (
    CellRequest,
    ExecutionContext,
    ResultCache,
    RunSpec,
    current_context,
    execution,
    run_cells,
)
from repro.harness.paper import (
    EXPERIMENTS,
    MAIN_SCHEDULERS,
    ExperimentOutput,
    chunk_study,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    granularity_study,
    table1,
    table2,
    table3,
    uts_study,
)
from repro.harness.tables import render_table

__all__ = [
    "CellRequest",
    "CellResult",
    "EXPERIMENTS",
    "ExecutionContext",
    "ExperimentOutput",
    "MAIN_SCHEDULERS",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "bar_chart",
    "chunk_study",
    "current_context",
    "execution",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "granularity_study",
    "grouped_bars",
    "render_table",
    "run_cell",
    "run_cells",
    "run_once",
    "series_lines",
    "table1",
    "table2",
    "table3",
    "uts_study",
]
