"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_cell(value) -> str:
    """Human formatting: thousands separators, compact floats."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[format_cell(c) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)
