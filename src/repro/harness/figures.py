"""ASCII figure rendering (bar charts and grouped series)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def bar_chart(items: Sequence[Tuple[str, float]], width: int = 46,
              title: str = "", unit: str = "") -> str:
    """Horizontal bar chart, one bar per (label, value)."""
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    if not items:
        out.append("(no data)")
        return "\n".join(out)
    vmax = max(v for _, v in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    for label, value in items:
        n = int(round(width * value / vmax))
        out.append(f"{label.rjust(label_w)} |{'#' * n}"
                   f" {value:.3g}{unit}")
    return "\n".join(out)


def grouped_bars(groups: Sequence[str],
                 series: Dict[str, Sequence[float]],
                 width: int = 40, title: str = "",
                 unit: str = "") -> str:
    """Several named series over common groups (Fig. 5/6 style)."""
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    vmax = max((max(vals) for vals in series.values() if len(vals)),
               default=1.0) or 1.0
    label_w = max([len(g) for g in groups]
                  + [len(s) for s in series], default=4)
    for gi, group in enumerate(groups):
        out.append(f"{group}:")
        for name, vals in series.items():
            v = vals[gi]
            n = int(round(width * v / vmax))
            out.append(f"  {name.rjust(label_w)} |{'#' * n}"
                       f" {v:.3g}{unit}")
    return "\n".join(out)


def series_lines(x_labels: Sequence[object],
                 series: Dict[str, Sequence[float]],
                 title: str = "") -> str:
    """Compact numeric series table (one row per x, one col per series)."""
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    names = list(series)
    header = "x".rjust(8) + "".join(n.rjust(12) for n in names)
    out.append(header)
    for i, x in enumerate(x_labels):
        row = f"{x!s:>8}" + "".join(
            f"{series[n][i]:>12.3f}" for n in names)
        out.append(row)
    return "\n".join(out)
