"""Unbalanced Tree Search (UTS) — the §X comparison workload.

A geometric UTS tree: each node's child count is drawn from a
binomial whose mean decays with depth, derived deterministically from a
SHA-256 hash of the node id (as in the real UTS benchmark, where the tree
shape comes from SHA-1 chains).  The tree is therefore identical no
matter which worker expands which node.

Every node expansion is an ``@AnyPlaceTask`` — UTS is the paper's example
of "problems where all tasks are locality-flexible" — and the work per
node is tiny, which is exactly why lifeline-based balancing beats plain
random stealing here, with DistWS in between (§X: DistWS ≈ +9% over
randomized stealing once lifelines are disabled, no overhead vs X10WS's
baseline when everything is flexible).

Validation: the number of nodes visited equals the sequential count of
the same tree.
"""

from __future__ import annotations

import hashlib
from math import comb
from typing import List, Optional

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.errors import AppError


#: Per-(b0, decay, depth) binomial CDF partial sums.  The thresholds
#: depend only on the tree parameters and the depth — never on the node —
#: so each depth's CDF walk happens once per process instead of once per
#: node.  The cached values are the *same floats* the inline loop
#: produced (same accumulation order), so every ``u <= cdf`` comparison
#: — and therefore the tree shape — is bit-identical.
_CDF_CACHE: dict = {}


def _cdf_thresholds(b0: int, decay: float, depth: int) -> List[float]:
    key = (b0, decay, depth)
    thresholds = _CDF_CACHE.get(key)
    if thresholds is None:
        mean = b0 * (decay ** depth)
        n_trials = b0 * 2
        p = min(0.99, mean / n_trials)
        cdf = 0.0
        thresholds = []
        for k in range(n_trials + 1):
            cdf += comb(n_trials, k) * (p ** k) * ((1 - p) ** (n_trials - k))
            thresholds.append(cdf)
        _CDF_CACHE[key] = thresholds
    return thresholds


def _child_count(tree_seed: int, node_id: str, depth: int,
                 b0: int, decay: float, max_depth: int) -> int:
    """Deterministic child count from a hash of the node id."""
    if depth >= max_depth:
        return 0
    digest = hashlib.sha256(
        f"{tree_seed}/{node_id}".encode()).digest()
    u = int.from_bytes(digest[:8], "big") / 2 ** 64
    # Inverse-binomial-ish draw: thresholds of a binomial(b0*2, p),
    # walked deterministically (precomputed per depth).
    for k, cdf in enumerate(_cdf_thresholds(b0, decay, depth)):
        if u <= cdf:
            return k
    return b0 * 2


class UTSApp(Application):
    """Unbalanced tree search over a hash-derived geometric tree."""

    name = "uts"
    suite = "uts"

    #: Simulated cost per node expansion (SHA chain evaluation).
    CYCLES_PER_NODE = 40_000.0

    def __init__(self, b0: int = 4, decay: float = 0.88,
                 max_depth: int = 18, seed: int = 12345) -> None:
        super().__init__(seed)
        if b0 < 1 or not (0.0 < decay <= 1.0) or max_depth < 1:
            raise AppError("uts: invalid parameters")
        self.b0 = b0
        self.decay = decay
        self.max_depth = max_depth
        self.nodes_visited = 0
        self._ran_parallel = False

    def _children_of(self, node_id: str, depth: int) -> int:
        return _child_count(self.seed, node_id, depth, self.b0,
                            self.decay, self.max_depth)

    # -- oracle -------------------------------------------------------------
    def sequential(self) -> int:
        """Count the tree's nodes without the runtime."""
        count = 0
        stack: List[tuple[str, int]] = [("root", 0)]
        while stack:
            node_id, depth = stack.pop()
            count += 1
            for c in range(self._children_of(node_id, depth)):
                stack.append((f"{node_id}.{c}", depth + 1))
        return count

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        self.nodes_visited = 0
        self._ran_parallel = True

        def expand(node_id: str, depth: int):
            def body(ctx) -> None:
                self.nodes_visited += 1
                kids = self._children_of(node_id, depth)
                for c in range(kids):
                    ctx.spawn(expand(f"{node_id}.{c}", depth + 1),
                              place=ctx.place,
                              work=self.CYCLES_PER_NODE,
                              flexible=True, closure_bytes=96,
                              label="uts-node")
            return body

        scope = ap.finish("uts")
        ap.async_at(0, expand("root", 0), work=self.CYCLES_PER_NODE,
                    flexible=True, closure_bytes=96, label="uts-node",
                    finish=scope)
        scope.close()

    # -- results -------------------------------------------------------------
    def result(self) -> int:
        if not self._ran_parallel:
            raise AppError("uts: run() has not been called")
        return self.nodes_visited

    def validate(self) -> None:
        got = self.result()
        want = self.sequential()
        self.check(got == want,
                   f"visited {got} nodes, sequential tree has {want}")
