"""The five small applications of the §VIII.2 granularity study.

"A separate experimental study used smaller applications, namely: merge
sort, skyline matrix multiplication, Monte-Carlo estimation of π, matrix
chain multiplication, and random access with task granularities of
0.12 ms, 0.93 ms, 0.005 ms, 0.09 ms and 0.006 ms, respectively."

Each app generates a burst of fine-grained, locality-flexible tasks
spread evenly across the places (these kernels are regular — there is no
inter-node imbalance for distributed stealing to repair), with real
(small) computations and per-task granularities matching the paper's
list.  The study's claim — "The DistWS algorithm performed worse on
these smaller applications" — reproduces directly: with nothing to
balance, DistWS's status checks, shared-deque traffic, and opportunistic
steals of sub-steal-cost tasks are pure overhead.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE

#: ms -> cycles at the default 2 GHz model.
_MS = 2_000_000.0


class _MicroApp(Application):
    """Shared machinery: a flat burst of small flexible tasks at place 0."""

    suite = "micro"
    #: Paper-reported task granularity in ms (per subclass).
    granularity_ms: float = 0.1
    #: Number of tasks to spawn.
    n_tasks: int = 600

    def __init__(self, n_tasks: Optional[int] = None,
                 seed: int = 12345) -> None:
        super().__init__(seed)
        if n_tasks is not None:
            if n_tasks < 1:
                raise AppError(f"{self.name}: n_tasks must be >= 1")
            self.n_tasks = n_tasks
        self._outputs: dict = {}

    # subclasses implement _task(i) -> value  and  _expected(i) -> value
    def _task_value(self, i: int):
        raise NotImplementedError

    def build(self, apgas: Apgas) -> None:
        ap = apgas
        P = ap.n_places
        work = self.granularity_ms * _MS
        scope = ap.finish(self.name)

        def leaf(i: int):
            def body(ctx) -> None:
                self._outputs[i] = self._task_value(i)
            return body

        def driver(p: int):
            def body(ctx) -> None:
                for i in range(self.n_tasks):
                    if i % P == p:
                        ctx.spawn(leaf(i), place=p, work=work,
                                  locality=FLEXIBLE, closure_bytes=256,
                                  label=f"{self.name}-task")
            return body

        per_place = -(-self.n_tasks // P)
        for p in range(P):
            if any(i % P == p for i in range(self.n_tasks)):
                ap.async_at(p, driver(p), work=2_000.0 * per_place,
                            label=f"{self.name}-driver", finish=scope)
        scope.close()

    def result(self) -> dict:
        if len(self._outputs) != self.n_tasks:
            raise AppError(f"{self.name}: run() has not been called")
        return self._outputs

    def sequential(self) -> dict:
        return {i: self._task_value(i) for i in range(self.n_tasks)}

    def validate(self) -> None:
        got = self.result()
        want = self.sequential()
        for i in range(self.n_tasks):
            ok = np.allclose(got[i], want[i]) if isinstance(
                got[i], np.ndarray) else got[i] == want[i]
            self.check(bool(ok), f"task {i} output mismatch")


class MergeSortMicro(_MicroApp):
    """Merge sort in 0.12 ms tasks: each task sorts one small run."""

    name = "mergesort"
    granularity_ms = 0.12

    def _task_value(self, i: int):
        rng = np.random.default_rng(self.seed + i)
        return np.sort(rng.integers(0, 10_000, size=256))


class SkylineMatMulMicro(_MicroApp):
    """Skyline (banded) matrix multiplication, 0.93 ms tasks."""

    name = "skyline"
    granularity_ms = 0.93

    def _task_value(self, i: int):
        rng = np.random.default_rng(self.seed + i)
        a = np.tril(rng.normal(size=(24, 24)))
        b = np.tril(rng.normal(size=(24, 24)))
        return a @ b


class MonteCarloPiMicro(_MicroApp):
    """Monte-Carlo estimation of π, 0.005 ms tasks."""

    name = "mcpi"
    granularity_ms = 0.005
    n_tasks = 2_000

    def _task_value(self, i: int):
        rng = np.random.default_rng(self.seed + i)
        xy = rng.uniform(size=(64, 2))
        return int(((xy ** 2).sum(axis=1) <= 1.0).sum())

    def pi_estimate(self) -> float:
        """Combined π estimate from all task samples."""
        hits = sum(self.result().values())
        return 4.0 * hits / (self.n_tasks * 64)


class MatrixChainMicro(_MicroApp):
    """Matrix chain multiplication (DP table blocks), 0.09 ms tasks."""

    name = "matchain"
    granularity_ms = 0.09

    def _task_value(self, i: int):
        rng = np.random.default_rng(self.seed + i)
        dims = rng.integers(4, 40, size=8)
        n = len(dims) - 1
        dp = np.zeros((n, n))
        for length in range(2, n + 1):
            for a in range(n - length + 1):
                b = a + length - 1
                dp[a, b] = min(
                    dp[a, k] + dp[k + 1, b]
                    + dims[a] * dims[k + 1] * dims[b + 1]
                    for k in range(a, b))
        return dp[0, n - 1]


class RandomAccessMicro(_MicroApp):
    """GUPS-style random table updates, 0.006 ms tasks."""

    name = "randomaccess"
    granularity_ms = 0.006
    n_tasks = 2_000

    def _task_value(self, i: int):
        rng = np.random.default_rng(self.seed + i)
        table = np.zeros(128, dtype=np.int64)
        idx = rng.integers(0, 128, size=64)
        np.add.at(table, idx, 1)
        return int((table * np.arange(128)).sum())


#: The five §VIII.2 study applications, in the paper's order.
MICRO_APPS = [MergeSortMicro, SkylineMatMulMicro, MonteCarloPiMicro,
              MatrixChainMicro, RandomAccessMicro]
