"""Turing ring (Cowichan suite) — the paper's worked example (§IV-B).

A ring of cells, each holding predator and prey populations, evolves over
iterations: populations update via coupled (discretised Lotka-Volterra)
equations, then bodies *migrate* to neighbouring cells — by design the
migration swings a cell's body count (and hence its work) by orders of
magnitude between iterations, which is the irregular load the paper uses
the application for.

Task structure straight from the paper's Figure 1:

- the **outer task** processes an entire cell: it updates the predator
  population, spawns the inner task, and computes the migration.  "Once
  the cell is copied, there is no need to copy the results back ... Thus,
  the outer async that processes an entire cell is a locality-flexible
  task" — so it is ``@AnyPlaceTask`` with ``encapsulates=True``.
- the **inner task** (``async (thisPlace)``) updates the prey population.
  If *it* is stolen instead (possible only under the non-selective
  scheduler), "the new population must then be copied back to the victim
  node" — so it is sensitive and carries ``copy_back``.

Iterations are separated by a ``finish`` barrier; a per-place task then
applies the migrations, and the continuation spawns the next iteration.

Determinism: updates read the iteration-``t`` state and write a separate
``t+1`` buffer, so results are bit-identical to the sequential oracle
regardless of the schedule.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.cluster.memory import block_distribution
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE


def _step_cell(pred: float, prey: float) -> tuple[float, float]:
    """One deterministic Lotka-Volterra-style update of a cell."""
    dt, a, d, b, e, K = 0.05, 0.9, 0.3, 1.1, 0.8, 50_000.0
    new_pred = pred + dt * (a * pred * prey / K - d * pred)
    new_prey = prey + dt * (b * prey * (1 - prey / K) - e * pred * prey / K)
    return (min(max(new_pred, 5.0), 1e6), min(max(new_prey, 5.0), 1e6))


def _migration_fraction(pred: float, prey: float, cell: int,
                        iteration: int,
                        capacity: float = 15_000.0) -> float:
    """Deterministic, strongly varying out-migration fraction.

    Two components: a phase term that swings between near-zero and
    near-total emigration (the paper: "migration can change the workload
    in cells by as much as two orders of magnitude in a single
    iteration"), and a crowding term that makes overfull cells export
    aggressively, bounding how much load can pile up in one cell.
    """
    phase = np.sin(pred / (prey + 1.0) + 0.7 * cell + 1.3 * iteration)
    crowding = (pred + prey) / capacity
    return float(np.clip(0.02 + 0.82 * abs(phase) + 1.2 * crowding,
                         0.02, 0.97))


class TuringRingApp(Application):
    """Predator-prey simulation on a distributed ring of cells."""

    name = "turing"
    suite = "cowichan"

    #: Outer (predator + migration) update cost per body.
    CYCLES_PER_BODY_OUTER = 700.0
    #: Inner (prey) update cost per body.
    CYCLES_PER_BODY_INNER = 400.0
    #: Migration application cost per cell.
    CYCLES_APPLY_PER_CELL = 40_000.0

    def __init__(self, n_cells: int = 320, iterations: int = 4,
                 mean_bodies: float = 3_000.0, seed: int = 12345) -> None:
        super().__init__(seed)
        if n_cells < 2:
            raise AppError("turing: need at least 2 cells")
        if iterations < 1:
            raise AppError("turing: need at least 1 iteration")
        self.n_cells = n_cells
        self.iterations = iterations
        self.mean_bodies = mean_bodies
        rng = np.random.default_rng(seed)
        # Spatially correlated lognormal body counts: contiguous stretches
        # of the ring (= the block chunks owned by each place) differ
        # strongly, so the initial even *cell* distribution still yields an
        # uneven *work* distribution across places.
        pos = np.arange(n_cells) / n_cells
        log_mean = (np.log(mean_bodies)
                    + 1.3 * np.sin(2 * np.pi * (2 * pos + rng.uniform())))
        bodies = rng.lognormal(mean=log_mean, sigma=0.5, size=n_cells)
        split = rng.uniform(0.2, 0.8, size=n_cells)
        self._pred0 = bodies * split
        self._prey0 = bodies * (1 - split)
        self.pred: Optional[np.ndarray] = None
        self.prey: Optional[np.ndarray] = None

    # -- shared dynamics (used by both oracle and parallel build) -----------
    def _iterate(self, pred: np.ndarray, prey: np.ndarray,
                 iteration: int) -> tuple[np.ndarray, np.ndarray]:
        n = self.n_cells
        new_pred = np.empty(n)
        new_prey = np.empty(n)
        for c in range(n):
            new_pred[c], new_prey[c] = _step_cell(pred[c], prey[c])
        return self._migrate(new_pred, new_prey, iteration)

    def _migrate(self, new_pred: np.ndarray, new_prey: np.ndarray,
                 iteration: int) -> tuple[np.ndarray, np.ndarray]:
        """Re-home migrating bodies (the paper's ``updateCellIDs``).

        60% of a cell's outflow jumps to a rotating long-range target
        (:meth:`_targets`), the rest drifts to the ring neighbour.
        Near-total out-migration of crowded cells swings individual cell
        workloads by more than an order of magnitude per iteration while
        keeping every cell's size bounded.
        """
        n = self.n_cells
        cells = np.arange(n)
        capacity = 1.5 * self.mean_bodies
        out_frac = np.array([
            _migration_fraction(new_pred[c], new_prey[c], c, iteration,
                                capacity)
            for c in range(n)])
        pred_out = new_pred * out_frac
        prey_out = new_prey * out_frac
        targets = self._targets(new_pred + new_prey, iteration)
        neighbours = (cells + 1) % n
        res_pred = new_pred - pred_out
        res_prey = new_prey - prey_out
        # 60% of the outflow converges on the emptiest nearby habitat (a
        # shared new cellID), the rest drifts to the ring neighbour.
        np.add.at(res_pred, targets, 0.6 * pred_out)
        np.add.at(res_prey, targets, 0.6 * prey_out)
        np.add.at(res_pred, neighbours, 0.4 * pred_out)
        np.add.at(res_prey, neighbours, 0.4 * prey_out)
        return res_pred, res_prey

    def _targets(self, bodies: np.ndarray, iteration: int) -> np.ndarray:
        """New cellIDs for migrating bodies: a long-range rotation whose
        stride changes every iteration.

        One-to-one (a permutation), so no cell ever accumulates more than
        one source's outflow — task sizes stay bounded — yet a near-empty
        cell receiving a crowded cell's exodus still grows by two orders
        of magnitude in a single step, and the mass crossing place
        boundaries keeps the per-place load moving."""
        n = self.n_cells
        # Stride aligned to 1/16th of the ring: a crowded stretch's exodus
        # lands together in another stretch, so the *location* of the hot
        # region moves while the imbalance itself persists — load that a
        # place-pinned scheduler cannot follow.
        step = max(1, n // 16)
        stride = (step * (1 + 3 * iteration)) % n
        if stride == 0:
            stride = step
        return (np.arange(n) + stride) % n

    def _flow_bytes(self, new_pred: np.ndarray, new_prey: np.ndarray,
                    iteration: int,
                    home_of: np.ndarray) -> dict[tuple[int, int], int]:
        """Bytes of migrating bodies crossing each (src, dst) place pair.

        Only the bodies that actually move travel the network (the
        paper's ``wl.update(mBodies)``), at ~16 bytes per body.
        """
        n = self.n_cells
        cells = np.arange(n)
        capacity = 1.5 * self.mean_bodies
        out_frac = np.array([
            _migration_fraction(new_pred[c], new_prey[c], c, iteration,
                                capacity)
            for c in range(n)])
        bodies_out = (new_pred + new_prey) * out_frac
        targets = self._targets(new_pred + new_prey, iteration)
        neighbours = (cells + 1) % n
        volumes: dict[tuple[int, int], float] = {}
        for c in range(n):
            src = int(home_of[c])
            for dst_cell, share in ((targets[c], 0.6), (neighbours[c], 0.4)):
                dst = int(home_of[dst_cell])
                if dst != src:
                    key = (src, dst)
                    volumes[key] = volumes.get(key, 0.0) \
                        + 16.0 * bodies_out[c] * share
        return {k: max(16, int(v)) for k, v in volumes.items()}

    # -- oracle -------------------------------------------------------------
    def sequential(self) -> tuple[np.ndarray, np.ndarray]:
        """Run the full simulation sequentially."""
        pred, prey = self._pred0.copy(), self._prey0.copy()
        for it in range(self.iterations):
            pred, prey = self._iterate(pred, prey, it)
        return pred, prey

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        n = self.n_cells
        P = ap.n_places
        pred = self._pred0.copy()
        prey = self._prey0.copy()
        nxt_pred = np.empty(n)
        nxt_prey = np.empty(n)
        chunks = block_distribution(n, P)
        home_of = np.empty(n, dtype=int)
        for p, chunk in enumerate(chunks):
            home_of[chunk.start:chunk.stop] = p
        cell_blocks = [
            ap.alloc(int(home_of[c]),
                     max(64, int(16 * (self._pred0[c] + self._prey0[c]))),
                     f"cell{c}")
            for c in range(n)]

        def spawn_iteration(it: int) -> None:
            if it == self.iterations:
                self.pred, self.prey = pred, prey
                return
            scope = ap.finish(f"turing-iter{it}")

            def outer_body(c: int):
                def body(ctx) -> None:
                    p0, q0 = pred[c], prey[c]
                    new_pred, new_prey = _step_cell(p0, q0)
                    nxt_pred[c] = new_pred

                    def inner(ictx) -> None:
                        nxt_prey[c] = new_prey

                    # async (thisPlace) c.updatePreyPop() — sensitive; if
                    # the non-selective scheduler ships it, the result
                    # must come back.
                    ctx.spawn(inner, place=ctx.place,
                              work=self.CYCLES_PER_BODY_INNER
                              * max(q0, 1.0),
                              reads=[cell_blocks[c]],
                              writes=[cell_blocks[c]],
                              copy_back=[cell_blocks[c]],
                              label="turing-inner")
                return body

            def driver_body(p: int):
                # "for each Cell c in wl { ... async ... }" — the per-place
                # worklist loop of the paper's Figure 1.  Spawning from a
                # running activity means the place is already busy, so
                # Algorithm 1 overflows the flexible outer tasks to the
                # shared deque where remote thieves can reach them.
                def body(ctx) -> None:
                    for c in chunks[p]:
                        bodies_c = pred[c] + prey[c]
                        ctx.spawn(outer_body(c),
                                  place=p,
                                  work=self.CYCLES_PER_BODY_OUTER
                                  * max(bodies_c, 1.0),
                                  reads=[cell_blocks[c]],
                                  writes=[cell_blocks[c]],
                                  locality=FLEXIBLE,
                                  encapsulates=True,
                                  closure_bytes=max(64, int(16 * bodies_c)),
                                  label="turing-outer")
                return body

            for p in range(P):
                ap.async_at(p, driver_body(p),
                            work=10_000.0 * max(len(chunks[p]), 1),
                            label="turing-driver", finish=scope)

            def barrier() -> None:
                # Migration over the populations the *tasks* computed
                # (wl.update(mBodies) in the paper's Figure 1), applied by
                # cheap per-place bookkeeping tasks; then next iteration.
                new_pred, new_prey = self._migrate(
                    nxt_pred.copy(), nxt_prey.copy(), it)
                apply_scope = ap.finish(f"turing-apply{it}")

                def apply_body(p: int):
                    def body(ctx) -> None:
                        chunk = chunks[p]
                        pred[chunk.start:chunk.stop] = \
                            new_pred[chunk.start:chunk.stop]
                        prey[chunk.start:chunk.stop] = \
                            new_prey[chunk.start:chunk.stop]
                    return body

                # Per-place migration outboxes sized by the bodies that
                # actually cross — the baseline inter-node traffic every
                # scheduler pays.
                flows = self._flow_bytes(nxt_pred, nxt_prey, it, home_of)
                inboxes: dict[int, list] = {p: [] for p in range(P)}
                for (src, dst), nbytes in sorted(flows.items()):
                    inboxes[dst].append(
                        ap.alloc(src, nbytes, f"mig[{src}->{dst}@{it}]"))
                for p in range(P):
                    chunk = chunks[p]
                    blocks = [cell_blocks[c] for c in chunk]
                    ap.async_at(p, apply_body(p),
                                work=self.CYCLES_APPLY_PER_CELL
                                * max(len(chunk), 1),
                                reads=inboxes[p], writes=blocks,
                                label="turing-apply", finish=apply_scope)
                apply_scope.on_complete(lambda: spawn_iteration(it + 1))
                apply_scope.close()

            scope.on_complete(barrier)
            scope.close()

        spawn_iteration(0)

    # -- results -------------------------------------------------------------
    def result(self) -> tuple[np.ndarray, np.ndarray]:
        if self.pred is None or self.prey is None:
            raise AppError("turing: run() has not been called")
        return self.pred, self.prey

    def validate(self) -> None:
        pred, prey = self.result()
        seq_pred, seq_prey = self.sequential()
        self.check(np.allclose(pred, seq_pred, rtol=1e-12, atol=1e-9),
                   "predator populations diverge from the oracle")
        self.check(np.allclose(prey, seq_prey, rtol=1e-12, atol=1e-9),
                   "prey populations diverge from the oracle")
        self.check(bool(np.all(pred > 0)) and bool(np.all(prey > 0)),
                   "populations must stay positive")
