"""The evaluation application suite.

Seven applications from the Cowichan and Lonestar suites (§VII), UTS
(§X), and the five §VIII.2 micro applications.  :data:`APP_REGISTRY` maps
names to factories; :func:`make_app` builds one with a size preset:

- ``"bench"`` — the defaults, used by the paper-reproduction benchmarks;
- ``"test"``  — small instances for fast unit/integration testing.
"""

from typing import Callable, Dict

from repro.apps.agglomerative import AgglomerativeApp, agglomerate
from repro.apps.base import Application
from repro.apps.bh_tree import QuadTree, direct_forces
from repro.apps.delaunay.generation import DMGApp
from repro.apps.delaunay.mesh import DelaunayMesh
from repro.apps.delaunay.refinement import DMRApp
from repro.apps.kmeans import KMeansApp
from repro.apps.micro import (
    MICRO_APPS,
    MatrixChainMicro,
    MergeSortMicro,
    MonteCarloPiMicro,
    RandomAccessMicro,
    SkylineMatMulMicro,
)
from repro.apps.nbody import NBodyApp
from repro.apps.quicksort import QuicksortApp
from repro.apps.turing_ring import TuringRingApp
from repro.apps.uts import UTSApp
from repro.errors import ConfigError

#: Small-instance overrides for fast tests.
_TEST_PARAMS: Dict[str, dict] = {
    "quicksort": dict(n=40_000),
    "turing": dict(n_cells=96, iterations=2, mean_bodies=1_000.0),
    "kmeans": dict(n=6_000, iterations=3, subchunks_per_place=8),
    "nbody": dict(n=600, steps=1, group_size=8),
    "agglom": dict(n=2_000, n_regions=64, region_clusters=8),
    "dmg": dict(n=1_200, n_seeds=24),
    "dmr": dict(n_points=800, chunk=4),
    "uts": dict(decay=0.78),
}

#: The seven paper-evaluation applications, in Figure order.
PAPER_APPS = ("quicksort", "turing", "kmeans", "agglom", "dmg", "dmr",
              "nbody")

APP_REGISTRY: Dict[str, Callable[..., Application]] = {
    "quicksort": QuicksortApp,
    "turing": TuringRingApp,
    "kmeans": KMeansApp,
    "nbody": NBodyApp,
    "agglom": AgglomerativeApp,
    "dmg": DMGApp,
    "dmr": DMRApp,
    "uts": UTSApp,
    "mergesort": MergeSortMicro,
    "skyline": SkylineMatMulMicro,
    "mcpi": MonteCarloPiMicro,
    "matchain": MatrixChainMicro,
    "randomaccess": RandomAccessMicro,
}


def make_app(name: str, scale: str = "bench", seed: int = 12345,
             **overrides) -> Application:
    """Instantiate a registered application at the given scale."""
    try:
        cls = APP_REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown application {name!r}; known: "
            f"{sorted(APP_REGISTRY)}") from None
    params: dict = {}
    if scale == "test":
        params.update(_TEST_PARAMS.get(name, {}))
    elif scale != "bench":
        raise ConfigError(f"unknown scale {scale!r} (bench|test)")
    params.update(overrides)
    params["seed"] = seed
    return cls(**params)


__all__ = [
    "APP_REGISTRY",
    "AgglomerativeApp",
    "Application",
    "DMGApp",
    "DMRApp",
    "DelaunayMesh",
    "KMeansApp",
    "MICRO_APPS",
    "MatrixChainMicro",
    "MergeSortMicro",
    "MonteCarloPiMicro",
    "NBodyApp",
    "PAPER_APPS",
    "QuadTree",
    "QuicksortApp",
    "RandomAccessMicro",
    "SkylineMatMulMicro",
    "TuringRingApp",
    "UTSApp",
    "agglomerate",
    "direct_forces",
    "make_app",
]
