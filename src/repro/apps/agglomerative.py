"""Agglomerative clustering (Lonestar suite).

The paper clusters 2M points bottom-up into a hierarchical tree; we run a
regionalised agglomerative clusterer at laptop scale (default 12 000
points):

1. points are spatially sorted and cut into contiguous **regions** whose
   sizes follow the cluster density (dense areas ⇒ big regions ⇒ the
   irregular per-place load);
2. **local phase** — one task per region agglomerates its points
   (repeated nearest-pair merges, centroid linkage, real NumPy distance
   matrices) down to ``region_clusters`` clusters.  Each task
   encapsulates its region, so it is ``@AnyPlaceTask`` flexible;
3. **tree phase** — a binary merge tree over the regions: each merge task
   gathers two cluster sets and agglomerates them back down, level by
   level (``finish`` barriers), until the root reduces to ``k`` clusters.

Validation: the sequential oracle runs the identical regionalised
algorithm (same partition, same deterministic tie-breaking) and must match
bit-exactly; with one region the algorithm degenerates to the classic
sequential agglomerative clustering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.cluster.memory import block_distribution
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE


def agglomerate(centroids: np.ndarray, weights: np.ndarray,
                until: int) -> Tuple[np.ndarray, np.ndarray, List[float]]:
    """Merge nearest pairs (centroid linkage) until ``until`` clusters.

    Deterministic: ties break on the lexicographically smallest index
    pair.  Returns (centroids, weights, merge_distances).
    """
    cents = [c.astype(float).copy() for c in centroids]
    ws = [float(w) for w in weights]
    merges: List[float] = []
    while len(cents) > until:
        arr = np.array(cents)
        d2 = ((arr[:, None, :] - arr[None, :, :]) ** 2).sum(axis=2)
        np.fill_diagonal(d2, np.inf)
        flat = int(np.argmin(d2))
        i, j = divmod(flat, len(cents))
        if i > j:
            i, j = j, i
        merges.append(float(np.sqrt(d2[i, j])))
        wi, wj = ws[i], ws[j]
        merged = (cents[i] * wi + cents[j] * wj) / (wi + wj)
        cents[i] = merged
        ws[i] = wi + wj
        del cents[j]
        del ws[j]
    return np.array(cents), np.array(ws), merges


class AgglomerativeApp(Application):
    """Regionalised hierarchical agglomerative clustering."""

    name = "agglom"
    suite = "lonestar"

    #: Cost per distance-matrix scan entry in a merge step.
    CYCLES_PER_PAIR = 13_000.0
    #: Driver bookkeeping per region.
    CYCLES_DRIVER_PER_REGION = 6_000.0

    def __init__(self, n: int = 12_000, n_regions: int = 320,
                 region_clusters: int = 10, k: int = 8,
                 seed: int = 12345) -> None:
        super().__init__(seed)
        if n < 16 or n_regions < 1 or region_clusters < 1 or k < 1:
            raise AppError("agglom: invalid parameters")
        if k > region_clusters * 2:
            raise AppError("agglom: k must be <= 2 * region_clusters")
        self.n = n
        self.n_regions = min(n_regions, n // 2)
        self.region_clusters = region_clusters
        self.k = k
        rng = np.random.default_rng(seed)
        # Dense clusters along the index axis => uneven region sizes.
        n_blobs = 7
        blob_centers = rng.uniform(-50, 50, size=(n_blobs, 2))
        pos_frac = np.arange(n) / n
        blob_of = (np.floor(pos_frac * n_blobs)).astype(int)
        self._points = blob_centers[blob_of] + rng.normal(
            scale=2.0, size=(n, 2))
        # Region boundaries: uneven cuts.  Sizes are spatially correlated
        # (stretches of big regions), so per-place totals stay uneven
        # instead of averaging out.
        ridx = np.arange(self.n_regions) / self.n_regions
        size_logmean = 1.3 * np.sin(2 * np.pi * (2 * ridx + rng.uniform()))
        sizes = rng.lognormal(mean=size_logmean, sigma=0.45,
                              size=self.n_regions)
        edges = np.concatenate(([0.0], np.cumsum(sizes)))
        edges = (edges / edges[-1] * n).astype(int)
        edges[-1] = n
        self._regions: List[Tuple[int, int]] = [
            (int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:])
            if hi > lo]
        self.centroids: Optional[np.ndarray] = None
        self.cluster_weights: Optional[np.ndarray] = None
        self._merge_log: Dict[object, List[float]] = {}

    # -- shared algorithm -----------------------------------------------------
    def _local(self, lo: int, hi: int):
        pts = self._points[lo:hi]
        until = min(self.region_clusters, hi - lo)
        return agglomerate(pts, np.ones(hi - lo), until)

    def _merge_sets(self, a, b, until: int):
        cents = np.vstack([a[0], b[0]])
        ws = np.concatenate([a[1], b[1]])
        return agglomerate(cents, ws, until)

    def _tree_reduce(self, sets: List, log=None):
        """Binary tree of merges; final root reduces to k."""
        level = 0
        while len(sets) > 1:
            nxt = []
            for i in range(0, len(sets) - 1, 2):
                until = (self.k if len(sets) == 2
                         else self.region_clusters)
                c, w, m = self._merge_sets(sets[i], sets[i + 1], until)
                if log is not None:
                    log[(level, i // 2)] = m
                nxt.append((c, w))
            if len(sets) % 2:
                nxt.append(sets[-1])
            sets = nxt
            level += 1
        c, w = sets[0]
        if len(c) > self.k:
            c, w, m = agglomerate(c, w, self.k)
            if log is not None:
                log[("root", 0)] = m
        return c, w

    # -- oracle -------------------------------------------------------------
    def sequential(self):
        """The same regionalised algorithm, sequentially."""
        sets = []
        for lo, hi in self._regions:
            c, w, _ = self._local(lo, hi)
            sets.append((c, w))
        return self._tree_reduce(sets)

    def sequential_classic(self):
        """Classic single-region agglomeration (for cross-checks)."""
        c, w, _ = agglomerate(self._points, np.ones(self.n), self.k)
        return c, w

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        P = ap.n_places
        regions = self._regions
        R = len(regions)
        chunks = block_distribution(self.n, P)
        region_place = []
        for lo, _hi in regions:
            for p, chunk in enumerate(chunks):
                if chunk.start <= lo < chunk.stop:
                    region_place.append(p)
                    break
        region_blocks = [
            ap.alloc(region_place[i], 24 * (hi - lo), f"agreg[{i}]")
            for i, (lo, hi) in enumerate(regions)]
        # Results of each stage, keyed like the oracle's tree.
        results: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

        def local_body(i: int):
            def body(ctx) -> None:
                lo, hi = regions[i]
                c, w, _m = self._local(lo, hi)
                results[i] = (c, w)
            return body

        scope = ap.finish("agglom-local")

        def driver_body(p: int):
            def body(ctx) -> None:
                for i, (lo, hi) in enumerate(regions):
                    if region_place[i] != p:
                        continue
                    m = hi - lo
                    ctx.spawn(local_body(i), place=p,
                              work=self.CYCLES_PER_PAIR * m * m
                              / max(1, np.log2(max(m, 2))),
                              reads=[region_blocks[i]],
                              writes=[region_blocks[i]],
                              locality=FLEXIBLE, encapsulates=True,
                              closure_bytes=64 + 24 * m,
                              label="agglom-local")
            return body

        for p in range(P):
            mine = sum(1 for q in region_place if q == p)
            if mine:
                ap.async_at(p, driver_body(p),
                            work=self.CYCLES_DRIVER_PER_REGION * mine,
                            label="agglom-driver", finish=scope)

        # Tree phase: one finish scope per level.
        def spawn_level(index_sets: List[Tuple[int, List[int]]],
                        sets_keys: List[int], level: int) -> None:
            """``sets_keys`` are keys in ``results`` for this level."""
            if len(sets_keys) == 1:
                c, w = results[sets_keys[0]]
                if len(c) > self.k:
                    c, w, _ = agglomerate(c, w, self.k)
                self.centroids = c
                self.cluster_weights = w
                return
            lvl_scope = ap.finish(f"agglom-level{level}")
            next_keys: List[int] = []
            pair_count = len(sets_keys) // 2
            for pi in range(pair_count):
                a_key = sets_keys[2 * pi]
                b_key = sets_keys[2 * pi + 1]
                out_key = 1_000_000 * (level + 1) + pi
                next_keys.append(out_key)
                until = (self.k if len(sets_keys) == 2
                         else self.region_clusters)
                home = region_place[a_key % R] if level == 0 \
                    else (pi * P) // max(pair_count, 1)

                def merge_body(a_key=a_key, b_key=b_key, out_key=out_key,
                               until=until):
                    def body(ctx) -> None:
                        c, w, _ = self._merge_sets(
                            results[a_key], results[b_key], until)
                        results[out_key] = (c, w)
                    return body

                nc = 2 * self.region_clusters
                ap.async_at(home, merge_body(),
                            work=self.CYCLES_PER_PAIR * nc * nc,
                            flexible=True, encapsulates=True,
                            closure_bytes=64 + 24 * nc,
                            label="agglom-merge", finish=lvl_scope)
            if len(sets_keys) % 2:
                next_keys.append(sets_keys[-1])
            lvl_scope.on_complete(
                lambda: spawn_level(index_sets, next_keys, level + 1))
            lvl_scope.close()

        scope.on_complete(
            lambda: spawn_level([], list(range(R)), 0))
        scope.close()

    # -- results -------------------------------------------------------------
    def result(self):
        if self.centroids is None:
            raise AppError("agglom: run() has not been called")
        return self.centroids, self.cluster_weights

    def validate(self) -> None:
        got_c, got_w = self.result()
        want_c, want_w = self.sequential()
        self.check(len(got_c) == self.k, "wrong final cluster count")
        self.check(bool(np.allclose(got_w.sum(), self.n)),
                   "total weight not conserved")
        self.check(bool(np.allclose(got_c, want_c, rtol=0, atol=0)),
                   "centroids differ from the sequential oracle")
        self.check(bool(np.allclose(got_w, want_w, rtol=0, atol=0)),
                   "weights differ from the sequential oracle")
