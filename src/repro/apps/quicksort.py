"""Quicksort (Cowichan suite).

The paper sorts 100M elements on the cluster; we sort a configurable array
(default 400k) with the standard distributed formulation of quicksort —
sample sort with quicksort phases:

1. **local sort** — each place's chunk is cut into per-worker slices that
   are quicksorted in place (real ``numpy`` sorts).  These tasks touch the
   place's chunk, so they are *locality-sensitive*.
2. **pivot selection** — one task at place 0 picks bucket pivots from a
   sample of *its own* chunk only.  This crude sampling is deliberate: on
   clustered input it yields skewed bucket sizes, i.e. the irregular load
   the paper's schedulers compete on.
3. **split** — each place locates the pivot boundaries in its sorted chunk
   (``searchsorted``) and publishes per-(place, bucket) segments as data
   blocks homed at the source place.
4. **bucket merge** — one task per bucket gathers its P segments (an
   all-to-all exchange: the blocks migrate to wherever the task runs) and
   merges them.  A bucket task encapsulates everything it needs, so it is
   ``@AnyPlaceTask``-**flexible** — the tasks DistWS may steal across
   nodes when a fat bucket overloads its home place.

Granularity: bucket-merge work is calibrated so a mean task costs ≈1.1 ms
of simulated time (Table I's Quicksort row).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apgas.api import Apgas
from repro.apgas.dist_array import DistArray
from repro.apps.base import Application
from repro.errors import AppError


class QuicksortApp(Application):
    """Distributed sample-sort quicksort over a block-distributed array."""

    name = "quicksort"
    suite = "cowichan"

    #: Local quicksort cost per element.
    CYCLES_SORT = 700.0
    #: Merge cost per element in the bucket-merge phase.
    CYCLES_MERGE = 500.0
    #: Split/searchsorted cost per element.
    CYCLES_SPLIT = 6.0
    #: Pivot-selection cost per sample.
    CYCLES_PIVOT = 50.0

    def __init__(self, n: int = 400_000, buckets_per_worker: float = 1.5,
                 skew: float = 2.5, seed: int = 12345) -> None:
        super().__init__(seed)
        if n < 16:
            raise AppError("quicksort: n must be >= 16")
        self.n = n
        self.buckets_per_worker = buckets_per_worker
        self.skew = skew
        rng = np.random.default_rng(seed)
        # Cluster mixture whose weights drift with array position: the
        # leading chunk (where the pivots are sampled) under-represents the
        # clusters that dominate elsewhere, so the crude place-0 sample
        # yields skewed buckets — the irregular load the schedulers compete
        # on.  (The paper's 100M-element runs get their irregularity from
        # value distribution and memory effects at scale.)
        n_clusters = 6
        centers = rng.uniform(0, 1000, size=n_clusters)
        phases = rng.uniform(0, 1, size=n_clusters)
        x = np.arange(n) / max(n - 1, 1)
        logits = self.skew * np.cos(2 * np.pi
                                    * (x[:, None] - phases[None, :]))
        weights = np.exp(logits)
        weights /= weights.sum(axis=1, keepdims=True)
        u = rng.uniform(size=n)
        which = (np.cumsum(weights, axis=1) < u[:, None]).sum(axis=1)
        which = np.clip(which, 0, n_clusters - 1)
        self._input = rng.normal(centers[which], 4.0)
        self._buckets: Dict[int, np.ndarray] = {}
        self._segments: Dict[Tuple[int, int], np.ndarray] = {}
        self._out: Optional[np.ndarray] = None

    # -- oracle -------------------------------------------------------------
    def sequential(self) -> np.ndarray:
        """Plain sort of the input."""
        return np.sort(self._input)

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        self._buckets = {}
        self._segments = {}
        data = self._input.copy()
        arr = DistArray.from_numpy(ap, data, label="qsort")
        P = ap.n_places
        n_buckets = max(P, int(round(
            self.buckets_per_worker * P
            * ap.rt.spec.workers_per_place)))
        sorted_chunks: Dict[int, np.ndarray] = {}

        # ---- phase 4: bucket merges (flexible; the stealable tasks) ----
        # A fat bucket (crude pivots!) is split into several sub-merge
        # tasks, all homed at the bucket's place: granularity stays
        # bounded, and the skew shows up as *task-count* imbalance that
        # only cross-node stealing can repair.
        target_elems = max(256, (2 * self.n) // max(n_buckets, 1))

        def spawn_merges() -> None:
            scope = ap.finish("qsort-merge")
            for b in range(n_buckets):
                segs = [self._segments[(p, b)] for p in range(P)]
                size = int(sum(len(s) for s in segs))
                home = b % P
                n_sub = max(1, -(-size // target_elems))
                if n_sub == 1:
                    sub_slices = [segs]
                else:
                    merged_view = np.concatenate([s for s in segs if len(s)])
                    qs = np.linspace(0, 1, n_sub + 1)[1:-1]
                    cuts = np.quantile(merged_view, qs)
                    sub_slices = []
                    for j in range(n_sub):
                        lo = -np.inf if j == 0 else cuts[j - 1]
                        hi = np.inf if j == n_sub - 1 else cuts[j]
                        sub_slices.append(
                            [s[(s > lo) & (s <= hi)] if j else s[s <= hi]
                             for s in segs])

                for j, sub in enumerate(sub_slices):
                    sub_size = int(sum(len(s) for s in sub))
                    # One view block per non-empty source slice: a stolen
                    # sub-merge hauls exactly its own data, nothing more.
                    blocks = [ap.alloc(p, 8 * len(s), f"qsub[{p},{b},{j}]")
                              for p, s in enumerate(sub) if len(s)]

                    def merge_body(b=b, j=j, sub=sub):
                        def body(ctx) -> None:
                            parts = [s for s in sub if len(s)]
                            merged = (np.sort(np.concatenate(parts))
                                      if parts else np.empty(0))
                            self._buckets[(b, j)] = merged
                        return body

                    ap.async_at(home, merge_body(),
                                work=self.CYCLES_MERGE * max(sub_size, 1),
                                reads=blocks, flexible=True,
                                encapsulates=True, closure_bytes=256,
                                label="qsort-bucket", finish=scope)
            scope.close()

        # ---- phase 3: per-place splits (sensitive) ----
        def spawn_splits(pivots: np.ndarray) -> None:
            scope = ap.finish("qsort-split")
            self._seg_blocks: Dict[Tuple[int, int], object] = {}

            def split_body(p: int):
                def body(ctx) -> None:
                    chunk = sorted_chunks[p]
                    bounds = np.searchsorted(chunk, pivots, side="right")
                    edges = np.concatenate(([0], bounds, [len(chunk)]))
                    for b in range(n_buckets):
                        seg = chunk[edges[b]:edges[b + 1]]
                        self._segments[(p, b)] = seg
                        self._seg_blocks[(p, b)] = ap.alloc(
                            p, max(8 * len(seg), 8), f"qseg[{p},{b}]")
                return body

            for p in range(P):
                chunk_len = len(arr.chunk_of(p))
                ap.async_at(p, split_body(p),
                            work=self.CYCLES_SPLIT * max(chunk_len, 1),
                            reads=[arr.block_of(p)], label="qsort-split",
                            finish=scope)
            scope.on_complete(spawn_merges)
            scope.close()

        # ---- phase 2: pivot selection at place 0 (crude by design) ----
        def spawn_pivot() -> None:
            scope = ap.finish("qsort-pivot")

            def pivot_body(ctx) -> None:
                sample = sorted_chunks[0]
                step = max(1, len(sample) // (4 * n_buckets))
                sampled = sample[::step]
                qs = np.linspace(0, 1, n_buckets + 1)[1:-1]
                self._pivots = np.quantile(sampled, qs)

            ap.async_at(0, pivot_body,
                        work=self.CYCLES_PIVOT * max(1, len(arr.chunk_of(0))
                                                     // (4 * n_buckets)),
                        reads=[arr.block_of(0)], label="qsort-pivot",
                        finish=scope)
            scope.on_complete(lambda: spawn_splits(self._pivots))
            scope.close()

        # ---- phase 1: per-worker local sorts, then per-place merge ----
        phase1 = ap.finish("qsort-local")
        W = ap.rt.spec.workers_per_place

        def local_sort_body(p: int, lo: int, hi: int):
            def body(ctx) -> None:
                data[lo:hi] = np.sort(data[lo:hi])
            return body

        def local_merge_body(p: int):
            def body(ctx) -> None:
                chunk = arr.local_view(p)
                sorted_chunks[p] = np.sort(chunk)  # merge of sorted runs
            return body

        for p in range(P):
            chunk = arr.chunk_of(p)
            m = len(chunk)
            sub = max(1, m // W)
            sub_scope = ap.finish(f"qsort-local-p{p}", parent=phase1)
            starts = list(range(chunk.start, chunk.stop, sub))
            for s in starts:
                e = min(s + sub, chunk.stop)
                ap.async_at(p, local_sort_body(p, s, e),
                            work=self.CYCLES_SORT * max(e - s, 1),
                            reads=[arr.block_of(p)],
                            writes=[arr.block_of(p)],
                            label="qsort-local", finish=sub_scope)

            def merge_closure(p=p, sub_scope=sub_scope):
                merge_scope = ap.finish(f"qsort-lmerge-p{p}", parent=phase1)
                ap.async_at(p, local_merge_body(p),
                            work=self.CYCLES_MERGE
                            * max(len(arr.chunk_of(p)), 1) * 0.2,
                            reads=[arr.block_of(p)],
                            writes=[arr.block_of(p)],
                            label="qsort-lmerge", finish=merge_scope)
                merge_scope.close()

            sub_scope.on_complete(merge_closure)
            sub_scope.close()
        phase1.on_complete(spawn_pivot)
        phase1.close()

    # -- results -------------------------------------------------------------
    def result(self) -> np.ndarray:
        if not self._buckets:
            raise AppError("quicksort: run() has not been called")
        if self._out is None:
            parts = [self._buckets[b] for b in sorted(self._buckets)]
            self._out = np.concatenate(parts) if parts else np.empty(0)
        return self._out

    def validate(self) -> None:
        out = self.result()
        self.check(len(out) == self.n, "length changed")
        self.check(bool(np.all(out[:-1] <= out[1:])), "output not sorted")
        self.check(np.array_equal(np.sort(self._input), out),
                   "output is not a permutation of the input")
