"""k-Means clustering (Cowichan suite).

The paper clusters into four clusters over 1000 iterations; we run a
weighted k-means (each point carries a sample weight — think pre-aggregated
observations) at laptop scale.  The weights are spatially correlated along
the array, so even with an even block distribution of *points*, the *work*
per place is uneven — the irregular load the schedulers compete on.

Per iteration:

- a per-place **driver** walks the place's worklist and spawns one
  **assignment task** per sub-chunk.  Assignment tasks compute real
  weighted distances and partial sums; they encapsulate their points
  (and the iteration's centroids travel inside every closure — a tiny
  broadcast), so they are ``@AnyPlaceTask`` (**flexible**): stealing one
  moves a self-contained slab of work.
- per-place **combine tasks** then a **root reduce task** at place 0
  (sensitive — it owns the centroids) fold the partials in a two-level
  tree (small remote reads), and the ``finish`` continuation launches
  the next iteration.

Determinism: partial sums are keyed by sub-chunk id and reduced in sorted
order, so the result is bit-identical to the sequential oracle run with
the same partitioning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.cluster.memory import block_distribution
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE


class KMeansApp(Application):
    """Weighted k-means over block-distributed points."""

    name = "kmeans"
    suite = "cowichan"

    #: Distance + partial-sum cost per (weighted point, centroid) pair.
    CYCLES_PER_POINT_K = 9_000.0
    #: Reduce cost per sub-chunk partial.
    CYCLES_REDUCE_PER_PART = 8_000.0
    #: Driver bookkeeping per sub-chunk.
    CYCLES_DRIVER_PER_TASK = 4_000.0

    def __init__(self, n: int = 48_000, k: int = 4, iterations: int = 6,
                 subchunks_per_place: int = 28, seed: int = 12345) -> None:
        super().__init__(seed)
        if n < k:
            raise AppError("kmeans: need at least k points")
        if k < 1 or iterations < 1 or subchunks_per_place < 1:
            raise AppError("kmeans: invalid parameters")
        self.n = n
        self.k = k
        self.iterations = iterations
        self.subchunks_per_place = subchunks_per_place
        rng = np.random.default_rng(seed)
        self._points = rng.normal(size=(n, 2)) * 3.0 \
            + rng.integers(0, 4, size=n)[:, None] * 8.0
        # Spatially correlated weights: stretches of heavy samples.
        pos = np.arange(n) / n
        log_w = 1.1 * np.sin(2 * np.pi * (3 * pos + rng.uniform()))
        self._weights = np.exp(log_w + rng.normal(scale=0.35, size=n))
        self._init_centroids = self._points[
            rng.choice(n, size=k, replace=False)].copy()
        self.centroids: Optional[np.ndarray] = None
        self._built_partition: Optional[List[Tuple[int, int]]] = None
        self._built_part_place: Optional[List[int]] = None
        self._built_n_places: Optional[int] = None

    # -- partitioning ---------------------------------------------------------
    def _partition(self, n_places: int) -> List[Tuple[int, int]]:
        """Sub-chunk (lo, hi) ranges: per place, uneven splits."""
        ranges: List[Tuple[int, int]] = []
        rng = np.random.default_rng(self.seed + 777)
        for p, chunk in enumerate(block_distribution(self.n, n_places)):
            m = len(chunk)
            if m == 0:
                continue
            cuts = np.sort(rng.uniform(size=self.subchunks_per_place - 1))
            edges = np.unique(np.concatenate(
                ([0], np.round(cuts * m).astype(int), [m])))
            for lo, hi in zip(edges[:-1], edges[1:]):
                if hi > lo:
                    ranges.append((chunk.start + int(lo),
                                   chunk.start + int(hi)))
        return ranges

    def _assign_partial(self, lo: int, hi: int, centroids: np.ndarray):
        """Weighted partial sums of one sub-chunk (real computation)."""
        pts = self._points[lo:hi]
        w = self._weights[lo:hi]
        d2 = ((pts[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assign = np.argmin(d2, axis=1)
        sums = np.zeros((self.k, 2))
        counts = np.zeros(self.k)
        for j in range(self.k):
            mask = assign == j
            sums[j] = (pts[mask] * w[mask, None]).sum(axis=0)
            counts[j] = w[mask].sum()
        return sums, counts

    def _combine(self, items) -> Tuple[np.ndarray, np.ndarray]:
        """Sum (sums, counts) pairs in the given order."""
        sums = np.zeros((self.k, 2))
        counts = np.zeros(self.k)
        for s, c in items:
            sums += s
            counts += c
        return sums, counts

    def _reduce_tree(self, partials: Dict[int, Tuple[np.ndarray, np.ndarray]],
                     part_place: List[int], n_places: int,
                     centroids: np.ndarray) -> np.ndarray:
        """Two-level deterministic reduction: per place, then across places.

        Mirrors the parallel combine/reduce task tree so the sequential
        oracle sums in bit-identical order.
        """
        place_partials = []
        for p in range(n_places):
            mine = [partials[i] for i in sorted(partials)
                    if part_place[i] == p]
            if mine:
                place_partials.append(self._combine(mine))
        sums, counts = self._combine(place_partials)
        new = centroids.copy()
        nonzero = counts > 0
        new[nonzero] = sums[nonzero] / counts[nonzero, None]
        return new

    # -- oracle -------------------------------------------------------------
    def sequential(self) -> np.ndarray:
        """Sequential weighted k-means with the same partition order."""
        parts = self._built_partition or self._partition(1)
        part_place = self._built_part_place or [0] * len(parts)
        P = self._built_n_places or 1
        centroids = self._init_centroids.copy()
        for _ in range(self.iterations):
            partials = {i: self._assign_partial(lo, hi, centroids)
                        for i, (lo, hi) in enumerate(parts)}
            centroids = self._reduce_tree(partials, part_place, P,
                                          centroids)
        return centroids

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        P = ap.n_places
        parts = self._partition(P)
        self._built_partition = parts
        centroids = self._init_centroids.copy()
        # Points: one view block per sub-chunk, homed where the points are.
        part_place = [0] * len(parts)
        chunks = block_distribution(self.n, P)
        for i, (lo, _hi) in enumerate(parts):
            for p, chunk in enumerate(chunks):
                if chunk.start <= lo < chunk.stop:
                    part_place[i] = p
                    break
        self._built_part_place = part_place
        self._built_n_places = P
        part_blocks = [
            ap.alloc(part_place[i], 16 * (hi - lo), f"kpts[{i}]")
            for i, (lo, hi) in enumerate(parts)]
        partial_blocks = [
            ap.alloc(part_place[i], 64 * self.k, f"kpart[{i}]")
            for i in range(len(parts))]
        place_partial_blocks = [
            ap.alloc(p, 64 * self.k, f"kplace[{p}]") for p in range(P)]
        partials: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        place_sums: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        n_parts_of = [sum(1 for q in part_place if q == p)
                      for p in range(P)]

        def spawn_iteration(it: int) -> None:
            if it == self.iterations:
                self.centroids = centroids
                return
            scope = ap.finish(f"kmeans-iter{it}")
            # The iteration's centroids travel inside every assignment
            # closure (a 4x2 broadcast), not as per-task remote reads.
            snapshot = centroids.copy()

            def assign_body(i: int):
                def body(ctx) -> None:
                    lo, hi = parts[i]
                    partials[i] = self._assign_partial(lo, hi, snapshot)
                return body

            def driver_body(p: int):
                def body(ctx) -> None:
                    for i, (lo, hi) in enumerate(parts):
                        if part_place[i] != p:
                            continue
                        weight = float(self._weights[lo:hi].sum())
                        ctx.spawn(
                            assign_body(i), place=p,
                            work=self.CYCLES_PER_POINT_K * weight * self.k,
                            reads=[part_blocks[i]],
                            writes=[partial_blocks[i]],
                            locality=FLEXIBLE, encapsulates=True,
                            closure_bytes=64 + 16 * self.k
                            + 16 * (hi - lo),
                            label="kmeans-assign")
                return body

            for p in range(P):
                if n_parts_of[p]:
                    ap.async_at(p, driver_body(p),
                                work=self.CYCLES_DRIVER_PER_TASK
                                * n_parts_of[p],
                                label="kmeans-driver", finish=scope)

            def combine_barrier() -> None:
                # Level 1: per-place combine tasks (parallel, sensitive).
                combine_scope = ap.finish(f"kmeans-combine{it}")

                def combine_body(p: int):
                    def body(ctx) -> None:
                        mine = [partials[i] for i in sorted(partials)
                                if part_place[i] == p]
                        place_sums[p] = self._combine(mine)
                    return body

                for p in range(P):
                    if n_parts_of[p]:
                        mine_blocks = [partial_blocks[i]
                                       for i in range(len(parts))
                                       if part_place[i] == p]
                        ap.async_at(p, combine_body(p),
                                    work=self.CYCLES_REDUCE_PER_PART
                                    * n_parts_of[p],
                                    reads=mine_blocks,
                                    writes=[place_partial_blocks[p]],
                                    label="kmeans-combine",
                                    finish=combine_scope)
                combine_scope.on_complete(root_barrier)
                combine_scope.close()

            def root_barrier() -> None:
                nonlocal centroids
                new = self._reduce_tree(partials, part_place, P, snapshot)
                partials.clear()
                place_sums.clear()
                reduce_scope = ap.finish(f"kmeans-reduce{it}")

                def reduce_body(ctx) -> None:
                    centroids[:] = new

                ap.async_at(0, reduce_body,
                            work=self.CYCLES_REDUCE_PER_PART * P,
                            reads=place_partial_blocks,
                            label="kmeans-reduce", finish=reduce_scope)
                reduce_scope.on_complete(lambda: spawn_iteration(it + 1))
                reduce_scope.close()

            scope.on_complete(combine_barrier)
            scope.close()

        spawn_iteration(0)

    # -- results -------------------------------------------------------------
    def result(self) -> np.ndarray:
        if self.centroids is None:
            raise AppError("kmeans: run() has not been called")
        return self.centroids

    def validate(self) -> None:
        got = self.result()
        want = self.sequential()
        self.check(got.shape == (self.k, 2), "centroid shape wrong")
        self.check(bool(np.allclose(got, want, rtol=0, atol=0)),
                   "centroids differ from the sequential oracle")
