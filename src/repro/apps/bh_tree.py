"""Barnes-Hut quadtree over 2-D bodies.

A plain, well-tested quadtree: leaves hold up to ``leaf_capacity`` bodies;
internal nodes carry mass and centre-of-mass aggregates.  The
:func:`force_on` traversal applies the standard θ (opening-angle)
criterion and also returns the number of interactions it evaluated, which
the n-body application uses both as the simulated-work measure and as the
irregularity signal (dense regions ⇒ deeper traversals ⇒ costlier tasks).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import AppError

#: Gravitational softening to avoid singularities.
SOFTENING2 = 1e-4


class QuadNode:
    """One node of the quadtree."""

    __slots__ = ("cx", "cy", "half", "mass", "com_x", "com_y",
                 "children", "bodies")

    def __init__(self, cx: float, cy: float, half: float) -> None:
        self.cx = cx
        self.cy = cy
        self.half = half
        self.mass = 0.0
        self.com_x = 0.0
        self.com_y = 0.0
        self.children: Optional[List[Optional["QuadNode"]]] = None
        self.bodies: List[int] = []

    @property
    def is_leaf(self) -> bool:
        """Whether this node still stores bodies directly."""
        return self.children is None

    def quadrant_of(self, x: float, y: float) -> int:
        """Quadrant index (0..3) of a position inside this node."""
        return (1 if x >= self.cx else 0) + (2 if y >= self.cy else 0)

    def child_center(self, q: int) -> Tuple[float, float]:
        """Centre coordinates of child quadrant ``q``."""
        h = self.half / 2
        dx = h if q & 1 else -h
        dy = h if q & 2 else -h
        return (self.cx + dx, self.cy + dy)


class QuadTree:
    """Barnes-Hut quadtree with mass aggregates."""

    def __init__(self, positions: np.ndarray, masses: np.ndarray,
                 leaf_capacity: int = 8, max_depth: int = 48) -> None:
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise AppError("QuadTree expects (n, 2) positions")
        if len(positions) != len(masses):
            raise AppError("positions and masses must align")
        if len(positions) == 0:
            raise AppError("QuadTree needs at least one body")
        self.positions = positions
        self.masses = masses
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        lo = positions.min(axis=0)
        hi = positions.max(axis=0)
        center = (lo + hi) / 2
        half = float(max(hi[0] - lo[0], hi[1] - lo[1]) / 2) * 1.001 + 1e-9
        self.root = QuadNode(float(center[0]), float(center[1]), half)
        self.n_nodes = 1
        for i in range(len(positions)):
            self._insert(self.root, i, 0)
        self._aggregate(self.root)

    # -- construction ------------------------------------------------------
    def _insert(self, node: QuadNode, i: int, depth: int) -> None:
        if node.is_leaf:
            node.bodies.append(i)
            if (len(node.bodies) > self.leaf_capacity
                    and depth < self.max_depth):
                self._split(node, depth)
            return
        q = node.quadrant_of(*self.positions[i])
        child = node.children[q]
        if child is None:
            cx, cy = node.child_center(q)
            child = QuadNode(cx, cy, node.half / 2)
            node.children[q] = child
            self.n_nodes += 1
        self._insert(child, i, depth + 1)

    def _split(self, node: QuadNode, depth: int) -> None:
        bodies, node.bodies = node.bodies, []
        node.children = [None, None, None, None]
        for i in bodies:
            self._insert(node, i, depth)

    def _aggregate(self, node: QuadNode) -> None:
        if node.is_leaf:
            ms = self.masses[node.bodies]
            node.mass = float(ms.sum())
            if node.mass > 0:
                ps = self.positions[node.bodies]
                node.com_x = float((ps[:, 0] * ms).sum() / node.mass)
                node.com_y = float((ps[:, 1] * ms).sum() / node.mass)
            return
        mass = 0.0
        mx = my = 0.0
        for child in node.children:
            if child is None:
                continue
            self._aggregate(child)
            mass += child.mass
            mx += child.com_x * child.mass
            my += child.com_y * child.mass
        node.mass = mass
        if mass > 0:
            node.com_x = mx / mass
            node.com_y = my / mass

    # -- queries ------------------------------------------------------------
    def force_on(self, i: int, theta: float = 0.5) -> Tuple[float, float, int]:
        """Force on body ``i`` and the number of interactions evaluated."""
        px, py = self.positions[i]
        fx = fy = 0.0
        interactions = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mass <= 0.0:
                continue
            dx = node.com_x - px
            dy = node.com_y - py
            dist2 = dx * dx + dy * dy + SOFTENING2
            if node.is_leaf:
                for j in node.bodies:
                    if j == i:
                        continue
                    bx = self.positions[j, 0] - px
                    by = self.positions[j, 1] - py
                    d2 = bx * bx + by * by + SOFTENING2
                    inv = self.masses[j] / (d2 * np.sqrt(d2))
                    fx += bx * inv
                    fy += by * inv
                    interactions += 1
                continue
            if (2 * node.half) ** 2 < theta * theta * dist2:
                inv = node.mass / (dist2 * np.sqrt(dist2))
                fx += dx * inv
                fy += dy * inv
                interactions += 1
            else:
                for child in node.children:
                    if child is not None:
                        stack.append(child)
        return fx, fy, interactions


def direct_forces(positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """O(n^2) reference forces (vectorised)."""
    delta = positions[None, :, :] - positions[:, None, :]
    d2 = (delta ** 2).sum(axis=2) + SOFTENING2
    np.fill_diagonal(d2, np.inf)
    inv = masses[None, :] / (d2 * np.sqrt(d2))
    return (delta * inv[:, :, None]).sum(axis=1)
