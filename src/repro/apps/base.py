"""Application framework for the evaluation suite.

Every benchmark application implements :class:`Application`:

- :meth:`~Application.build` spawns the root activities against the APGAS
  layer (this is "the program" — it runs real Python computation inside
  task bodies and annotates tasks with work, data blocks and locality);
- :meth:`~Application.sequential` computes the oracle result with a plain
  sequential implementation;
- :meth:`~Application.validate` checks the parallel result against the
  oracle (exact where the algorithm is deterministic, invariant-based for
  order-dependent algorithms like mesh refinement).

Work calibration: each app declares per-unit work constants chosen so that
the *mean task granularity ordering* matches the paper's Table I
(Quicksort and Turing ring fine-grained; k-Means, Agglomerative, DMG, DMR
and n-Body coarse).  Absolute values are compressed relative to the paper
(their coarsest tasks are ~900 ms; ours are tens of ms of simulated time)
to keep event counts tractable — documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from repro.apgas.api import Apgas
from repro.errors import AppError
from repro.runtime.runtime import SimRuntime
from repro.runtime.stats import RunStats


class Application(abc.ABC):
    """One runnable benchmark application."""

    #: Registry name (e.g. ``"quicksort"``); set by subclasses.
    name: str = "abstract"
    #: Which suite the app comes from (cowichan / lonestar / micro / uts).
    suite: str = ""

    def __init__(self, seed: int = 12345) -> None:
        self.seed = seed
        self._ran = False

    # -- to implement ------------------------------------------------------
    @abc.abstractmethod
    def build(self, apgas: Apgas) -> None:
        """Spawn the root activities of the parallel program."""

    @abc.abstractmethod
    def sequential(self) -> Any:
        """Compute the oracle result sequentially (pure Python/NumPy)."""

    @abc.abstractmethod
    def result(self) -> Any:
        """The parallel computation's result (valid after :meth:`run`)."""

    @abc.abstractmethod
    def validate(self) -> None:
        """Raise :class:`AppError` unless the parallel result is correct."""

    # -- running ------------------------------------------------------------
    def run(self, runtime: SimRuntime, validate: bool = True,
            max_cycles: float = 1e14) -> RunStats:
        """Execute the app on ``runtime`` and (optionally) validate."""
        if self._ran:
            raise AppError(
                f"{self.name}: Application instances are single-use; "
                "construct a fresh one per run")
        self._ran = True
        stats = runtime.run(lambda rt: self.build(Apgas(rt)),
                            max_cycles=max_cycles)
        if validate:
            self.validate()
        return stats

    # -- helpers ------------------------------------------------------------
    def check(self, condition: bool, message: str) -> None:
        """Validation helper: raise a labelled :class:`AppError` on failure."""
        if not condition:
            raise AppError(f"{self.name}: validation failed: {message}")

    def params(self) -> Dict[str, Any]:
        """Human-readable parameter dict for reports."""
        return {k: v for k, v in vars(self).items()
                if not k.startswith("_") and isinstance(v, (int, float, str))}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.params()}>"
