"""Planar geometry predicates for Delaunay triangulation.

Float-based predicates with a relative epsilon guard — adequate for the
random (general-position) point sets the applications generate.  All
triangles are kept counter-clockwise so the in-circle test's sign is
meaningful.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

Point = Tuple[float, float]


def orient2d(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle abc (>0 iff CCW)."""
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def is_ccw(a: Point, b: Point, c: Point) -> bool:
    """Whether abc is counter-clockwise."""
    return orient2d(a, b, c) > 0.0


def in_circle(a: Point, b: Point, c: Point, d: Point) -> bool:
    """Whether ``d`` lies strictly inside the circumcircle of CCW abc."""
    adx = a[0] - d[0]
    ady = a[1] - d[1]
    bdx = b[0] - d[0]
    bdy = b[1] - d[1]
    cdx = c[0] - d[0]
    cdy = c[1] - d[1]
    ad2 = adx * adx + ady * ady
    bd2 = bdx * bdx + bdy * bdy
    cd2 = cdx * cdx + cdy * cdy
    det = (adx * (bdy * cd2 - cdy * bd2)
           - ady * (bdx * cd2 - cdx * bd2)
           + ad2 * (bdx * cdy - cdx * bdy))
    return det > 1e-12


def circumcenter(a: Point, b: Point, c: Point) -> Point:
    """Circumcentre of triangle abc."""
    d = 2.0 * orient2d(a, b, c)
    if d == 0.0:
        raise ZeroDivisionError("degenerate triangle")
    a2 = a[0] * a[0] + a[1] * a[1]
    b2 = b[0] * b[0] + b[1] * b[1]
    c2 = c[0] * c[0] + c[1] * c[1]
    ux = (a2 * (b[1] - c[1]) + b2 * (c[1] - a[1]) + c2 * (a[1] - b[1])) / d
    uy = (a2 * (c[0] - b[0]) + b2 * (a[0] - c[0]) + c2 * (b[0] - a[0])) / d
    return (ux, uy)


def triangle_angles(a: Point, b: Point, c: Point) -> Tuple[float, float, float]:
    """Interior angles (degrees) at vertices a, b, c."""
    def side(p: Point, q: Point) -> float:
        return math.hypot(p[0] - q[0], p[1] - q[1])

    la = side(b, c)
    lb = side(a, c)
    lc = side(a, b)

    def angle(opposite: float, s1: float, s2: float) -> float:
        cosv = (s1 * s1 + s2 * s2 - opposite * opposite) / (2 * s1 * s2)
        return math.degrees(math.acos(max(-1.0, min(1.0, cosv))))

    return (angle(la, lb, lc), angle(lb, la, lc), angle(lc, la, lb))


def min_angle(a: Point, b: Point, c: Point) -> float:
    """Smallest interior angle (degrees)."""
    return min(triangle_angles(a, b, c))


def point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    """Whether ``p`` lies inside or on CCW triangle abc."""
    eps = -1e-12
    return (orient2d(a, b, p) >= eps and orient2d(b, c, p) >= eps
            and orient2d(c, a, p) >= eps)


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a point set."""
    n = len(points)
    return (sum(p[0] for p in points) / n, sum(p[1] for p in points) / n)
