"""Delaunay substrate and applications (Lonestar DMG/DMR).

- :mod:`repro.apps.delaunay.geometry` — planar predicates;
- :mod:`repro.apps.delaunay.mesh` — incremental Bowyer-Watson
  triangulation with adjacency and validation helpers;
- :mod:`repro.apps.delaunay.generation` — the DMG application (§IV-A);
- :mod:`repro.apps.delaunay.refinement` — the DMR application.
"""

from repro.apps.delaunay.generation import DMGApp
from repro.apps.delaunay.mesh import DelaunayMesh
from repro.apps.delaunay.refinement import DMRApp

__all__ = ["DMGApp", "DMRApp", "DelaunayMesh"]
