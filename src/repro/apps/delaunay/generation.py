"""Delaunay mesh generation (Lonestar suite) — the paper's §IV-A example.

The mesh generator seeds a coarse triangulation, buckets the remaining
points by their enclosing region, and processes buckets in parallel:

- a bucket task "encapsulates all the data necessary for its computation"
  (the region's points), inserts them into the mesh, and — when the bucket
  is large — splits and spawns child buckets *at its executing place*, so
  "all the new triangles created by the thief have local access to other
  points" and the stolen work feeds the thief's co-located workers.
  Bucket tasks are therefore ``@AnyPlaceTask`` flexible (§IV-A);
- the input points are drawn from dense blobs, so bucket sizes (and the
  per-place workloads) are strongly uneven.

The simulator executes task bodies atomically, so the shared mesh needs no
locking; and because the Delaunay triangulation of points in general
position is unique, the final mesh is schedule-independent and is compared
coordinate-for-coordinate against a sequential insertion oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.apps.delaunay.mesh import DelaunayMesh
from repro.cluster.memory import block_distribution
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE


class DMGApp(Application):
    """Parallel Delaunay mesh generation over bucketed points."""

    name = "dmg"
    suite = "lonestar"

    #: Simulated insertion cost per point (cavity search + retriangulate),
    #: ~0.1 ms at 2 GHz.
    CYCLES_PER_POINT = 200_000.0
    #: Driver bookkeeping per bucket.
    CYCLES_DRIVER_PER_BUCKET = 8_000.0

    def __init__(self, n: int = 9_000, n_seeds: int = 48,
                 bucket_split: int = 36, seed: int = 12345) -> None:
        super().__init__(seed)
        if n < 32 or n_seeds < 4 or bucket_split < 4:
            raise AppError("dmg: invalid parameters")
        self.n = n
        self.n_seeds = min(n_seeds, n // 4)
        self.bucket_split = bucket_split
        rng = np.random.default_rng(seed)
        # Dense blobs on a plane: very uneven bucket populations.
        n_blobs = 6
        centers = rng.uniform(10, 90, size=(n_blobs, 2))
        weights = rng.dirichlet(np.ones(n_blobs) * 1.5)
        counts = np.maximum(1, (weights * n * 0.72).astype(int))
        pts = [rng.normal(centers[b], 4.5, size=(counts[b], 2))
               for b in range(n_blobs)]
        rest = rng.uniform(0, 100, size=(max(0, n - sum(counts)), 2))
        all_pts = np.vstack(pts + [rest])[:n]
        self._points = np.clip(all_pts, 0.0, 100.0)
        self.bounds = (0.0, 0.0, 100.0, 100.0)
        self.mesh: Optional[DelaunayMesh] = None

    # -- oracle -------------------------------------------------------------
    def sequential(self) -> List[Tuple[Tuple[float, float], ...]]:
        """Sequential insertion; returns coordinate-sorted triangles."""
        mesh = DelaunayMesh(self.bounds)
        for p in self._points:
            mesh.insert((float(p[0]), float(p[1])))
        return self._coord_triangles(mesh)

    @staticmethod
    def _coord_triangles(mesh: DelaunayMesh):
        out = []
        for tid in mesh.interior_tids():
            tri = mesh.triangles[tid]
            out.append(tuple(sorted(mesh.vertices[v] for v in tri)))
        return sorted(out)

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        P = ap.n_places
        mesh = DelaunayMesh(self.bounds)
        self.mesh = mesh
        rng = np.random.default_rng(self.seed + 99)
        # Seed triangulation: a spread sample of the input.
        seed_idx = np.linspace(0, self.n - 1, self.n_seeds).astype(int)
        seed_set = set(int(i) for i in seed_idx)
        rest_idx = np.array([i for i in range(self.n)
                             if i not in seed_set])
        # Bucket the remaining points by nearest seed.
        seeds = self._points[seed_idx]
        rest = self._points[rest_idx]
        d2 = ((rest[:, None, :] - seeds[None, :, :]) ** 2).sum(axis=2)
        owner = np.argmin(d2, axis=1)
        buckets: List[np.ndarray] = [
            rest[owner == s] for s in range(self.n_seeds)]
        bucket_place = [s % P
                        for s in range(self.n_seeds)]
        bucket_blocks = [
            ap.alloc(bucket_place[s], max(16, 16 * len(buckets[s])),
                     f"dmgbkt[{s}]")
            for s in range(self.n_seeds)]

        def insert_task_body(points: np.ndarray, block, depth: int):
            def body(ctx) -> None:
                if len(points) > self.bucket_split and depth < 8:
                    # Split: insert a pivot portion, spawn children for
                    # the rest at *this* place (they feed co-located
                    # workers — §IV-A property iv).
                    halves = np.array_split(points, 2)
                    for half in halves:
                        if len(half) == 0:
                            continue
                        factor = (1.0 if len(half) <= self.bucket_split
                                  else 0.05)
                        ctx.spawn(
                            insert_task_body(half, block, depth + 1),
                            place=ctx.place,
                            work=self.CYCLES_PER_POINT * len(half)
                            * factor,
                            reads=[block], locality=FLEXIBLE,
                            encapsulates=True,
                            closure_bytes=64 + 16 * len(half),
                            label="dmg-bucket")
                    return
                for p in points:
                    mesh.insert((float(p[0]), float(p[1])))
            return body

        # Root task: build the seed triangulation, then per-place drivers
        # spawn the bucket tasks.
        scope = ap.finish("dmg")

        def seed_body(ctx) -> None:
            for i in seed_idx:
                p = self._points[int(i)]
                mesh.insert((float(p[0]), float(p[1])))

            def driver_body(p: int):
                def body(dctx) -> None:
                    for s in range(self.n_seeds):
                        if bucket_place[s] != p or len(buckets[s]) == 0:
                            continue
                        dctx.spawn(
                            insert_task_body(buckets[s],
                                             bucket_blocks[s], 0),
                            place=p,
                            work=self.CYCLES_PER_POINT
                            * max(len(buckets[s]), 1)
                            * (1.0 if len(buckets[s])
                               <= self.bucket_split else 0.05),
                            reads=[bucket_blocks[s]],
                            locality=FLEXIBLE, encapsulates=True,
                            closure_bytes=64 + 16 * len(buckets[s]),
                            label="dmg-bucket")
                return body

            for p in range(P):
                mine = sum(1 for s in range(self.n_seeds)
                           if bucket_place[s] == p and len(buckets[s]))
                if mine:
                    ctx.spawn(driver_body(p), place=p,
                              work=self.CYCLES_DRIVER_PER_BUCKET * mine,
                              label="dmg-driver")

        ap.async_at(0, seed_body,
                    work=self.CYCLES_PER_POINT * self.n_seeds,
                    label="dmg-seed", finish=scope)
        scope.close()

    # -- results -------------------------------------------------------------
    def result(self) -> DelaunayMesh:
        if self.mesh is None or self.mesh.points_inserted < self.n:
            raise AppError("dmg: run() has not been called (or incomplete)")
        return self.mesh

    def validate(self) -> None:
        mesh = self.result()
        self.check(mesh.points_inserted == self.n,
                   "not all points were inserted")
        self.check(mesh.euler_check(), "Euler characteristic violated")
        self.check(mesh.check_delaunay(vertices_sample=48),
                   "Delaunay property violated")
        if self.n <= 4_000:
            self.check(self._coord_triangles(mesh) == self.sequential(),
                       "mesh differs from sequential-insertion oracle")
