"""Incremental Delaunay triangulation (Bowyer-Watson).

A classic implementation: a super-triangle encloses the domain; points are
inserted one at a time by

1. locating the containing triangle (a straight walk from a hint, with a
   linear-scan fallback for robustness);
2. growing the *cavity* — the connected set of triangles whose
   circumcircles contain the new point;
3. deleting the cavity and fanning the point to its boundary edges.

The final triangulation (after discarding triangles touching super-
triangle vertices) is the Delaunay triangulation of the inserted points,
independent of insertion order for points in general position — the
property the DMG application's validation relies on (§IV-A: "the final
mesh generated is the same regardless of the order in which the points
are processed").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.apps.delaunay.geometry import (
    Point,
    in_circle,
    is_ccw,
    min_angle,
    orient2d,
    point_in_triangle,
)
from repro.errors import AppError

Edge = Tuple[int, int]
Tri = Tuple[int, int, int]


def _edge(a: int, b: int) -> Edge:
    return (a, b) if a < b else (b, a)


class DelaunayMesh:
    """A growing Delaunay triangulation with adjacency tracking."""

    def __init__(self, bounds: Tuple[float, float, float, float]) -> None:
        """``bounds`` = (xmin, ymin, xmax, ymax) of the expected points."""
        xmin, ymin, xmax, ymax = bounds
        if not (xmax > xmin and ymax > ymin):
            raise AppError("mesh bounds must be a non-empty box")
        w = xmax - xmin
        h = ymax - ymin
        cx = (xmin + xmax) / 2
        # A super-triangle comfortably containing the bounding box.
        m = 4.0 * max(w, h)
        self.vertices: List[Point] = [
            (cx - m, ymin - 0.5 * m),
            (cx + m, ymin - 0.5 * m),
            (cx, ymax + m),
        ]
        self.super_vertices = (0, 1, 2)
        self.triangles: Dict[int, Tri] = {}
        self.edge_map: Dict[Edge, List[int]] = {}
        self._next_tid = 0
        self._add_triangle((0, 1, 2))
        #: Hint for the next location walk.
        self._last_tid: Optional[int] = None
        self.points_inserted = 0

    # -- structure maintenance ---------------------------------------------
    def _add_triangle(self, tri: Tri) -> int:
        a, b, c = tri
        va, vb, vc = (self.vertices[a], self.vertices[b], self.vertices[c])
        if not is_ccw(va, vb, vc):
            tri = (a, c, b)
        tid = self._next_tid
        self._next_tid += 1
        self.triangles[tid] = tri
        for e in self._tri_edges(tri):
            self.edge_map.setdefault(e, []).append(tid)
        return tid

    def _remove_triangle(self, tid: int) -> None:
        tri = self.triangles.pop(tid)
        for e in self._tri_edges(tri):
            holders = self.edge_map.get(e)
            if holders is not None:
                try:
                    holders.remove(tid)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not holders:
                    del self.edge_map[e]

    @staticmethod
    def _tri_edges(tri: Tri) -> List[Edge]:
        a, b, c = tri
        return [_edge(a, b), _edge(b, c), _edge(c, a)]

    def neighbours(self, tid: int) -> List[int]:
        """Triangles sharing an edge with ``tid``."""
        out: List[int] = []
        for e in self._tri_edges(self.triangles[tid]):
            for other in self.edge_map.get(e, ()):
                if other != tid:
                    out.append(other)
        return out

    # -- queries ------------------------------------------------------------
    def _tri_points(self, tid: int) -> Tuple[Point, Point, Point]:
        a, b, c = self.triangles[tid]
        return (self.vertices[a], self.vertices[b], self.vertices[c])

    def locate(self, p: Point, hint: Optional[int] = None) -> int:
        """Triangle containing ``p`` (walk + fallback linear scan)."""
        tid = hint if hint in self.triangles else self._last_tid
        if tid not in self.triangles:
            tid = next(iter(self.triangles))
        seen: Set[int] = set()
        for _ in range(4 * len(self.triangles) + 16):
            if tid in seen:
                break
            seen.add(tid)
            tri = self.triangles[tid]
            pts = self._tri_points(tid)
            # Walk towards p across the first edge that sees p outside.
            moved = False
            for i in range(3):
                a, b = pts[i], pts[(i + 1) % 3]
                if orient2d(a, b, p) < -1e-12:
                    e = _edge(tri[i], tri[(i + 1) % 3])
                    others = [t for t in self.edge_map.get(e, ())
                              if t != tid]
                    if others:
                        tid = others[0]
                        moved = True
                        break
            if not moved:
                if point_in_triangle(p, *pts):
                    return tid
                break
        # Robust fallback.
        for tid, tri in self.triangles.items():
            if point_in_triangle(p, *self._tri_points(tid)):
                return tid
        raise AppError(f"point {p} outside the triangulation domain")

    # -- insertion ------------------------------------------------------------
    def insert(self, p: Point, hint: Optional[int] = None) -> List[int]:
        """Insert a point; returns the new triangle ids (the fan)."""
        start = self.locate(p, hint)
        # Grow the cavity of circumcircle-violating triangles.
        cavity: Set[int] = {start}
        frontier = [start]
        while frontier:
            tid = frontier.pop()
            for nb in self.neighbours(tid):
                if nb in cavity:
                    continue
                if in_circle(*self._tri_points(nb), p):
                    cavity.add(nb)
                    frontier.append(nb)
        # Boundary edges: edges of cavity triangles shared with at most
        # one cavity member.
        boundary: List[Edge] = []
        for tid in cavity:
            for e in self._tri_edges(self.triangles[tid]):
                holders = self.edge_map.get(e, ())
                inside = sum(1 for t in holders if t in cavity)
                if inside == 1:
                    boundary.append(e)
        pi = len(self.vertices)
        self.vertices.append(p)
        for tid in list(cavity):
            self._remove_triangle(tid)
        new_ids = []
        for (a, b) in boundary:
            new_ids.append(self._add_triangle((a, b, pi)))
        self._last_tid = new_ids[-1] if new_ids else None
        self.points_inserted += 1
        return new_ids

    # -- final views -----------------------------------------------------------
    def real_triangles(self) -> List[Tri]:
        """Triangles not touching the super-triangle, sorted."""
        sv = set(self.super_vertices)
        out = [tuple(sorted(t)) for t in self.triangles.values()
               if not (set(t) & sv)]
        return sorted(out)  # type: ignore[return-value]

    def interior_tids(self) -> List[int]:
        """Ids of triangles not touching the super-triangle."""
        sv = set(self.super_vertices)
        return [tid for tid, t in self.triangles.items()
                if not (set(t) & sv)]

    def triangle_min_angle(self, tid: int) -> float:
        """Smallest interior angle of triangle ``tid`` in degrees."""
        return min_angle(*self._tri_points(tid))

    # -- validation helpers -------------------------------------------------------
    def check_delaunay(self, sample: Optional[Iterable[int]] = None,
                       vertices_sample: Optional[int] = 64) -> bool:
        """Empty-circumcircle check over (a sample of) the triangulation."""
        tids = list(sample) if sample is not None else self.interior_tids()
        sv = set(self.super_vertices)
        verts = [i for i in range(len(self.vertices)) if i not in sv]
        if vertices_sample is not None and len(verts) > vertices_sample:
            step = len(verts) // vertices_sample
            verts = verts[::step]
        for tid in tids:
            tri = self.triangles.get(tid)
            if tri is None:
                continue
            pts = self._tri_points(tid)
            for vi in verts:
                if vi in tri:
                    continue
                if in_circle(*pts, self.vertices[vi]):
                    return False
        return True

    def euler_check(self) -> bool:
        """V - E + F == 2 over the full complex (with super-triangle)."""
        V = len(self.vertices)
        E = len(self.edge_map)
        F = len(self.triangles) + 1  # plus the outer face
        return V - E + F == 2
