"""Delaunay mesh refinement (Lonestar suite).

Starting from a Delaunay mesh, refine until no *refinable* triangle is
bad, where bad means "smallest interior angle below the target" and
refinable means "interior triangle with a circumradius above the size
floor" (the floor is what guarantees termination, Chew's first
algorithm).  Refining a bad triangle inserts its circumcentre, which
re-triangulates a cavity and may create new bad triangles — the classic
wavefront irregularity: work is discovered dynamically, and dense regions
of skinny triangles generate bursts of new tasks.

Parallel structure:

- bad triangles are chunked spatially; each **refine task** processes its
  chunk (skipping triangles that earlier insertions already destroyed or
  fixed), then spawns follow-up tasks *at its place* for the new bad
  triangles it created.  Refine tasks carry their cavity data, so they
  are ``@AnyPlaceTask`` flexible with ``encapsulates=True``;
- the initial mesh construction is input preparation (the paper starts
  from a 550K-triangle mesh), so it happens at build time, unsimulated.

Validation: on completion no refinable triangle is bad, the mesh is still
Delaunay (sampled empty-circumcircle checks), Euler's relation holds, and
all original points survive.  The *result mesh* depends on insertion
order (as in the paper's runtime), but any fixed (scheduler seed, app
seed) pair reproduces bit-identically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.apps.delaunay.geometry import circumcenter
from repro.apps.delaunay.mesh import DelaunayMesh
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE


class DMRApp(Application):
    """Parallel Delaunay mesh refinement."""

    name = "dmr"
    suite = "lonestar"

    #: Simulated cost per circumcentre insertion.
    CYCLES_PER_INSERT = 1_400_000.0
    #: Cost to test one candidate triangle (angle + liveness checks).
    CYCLES_PER_CHECK = 60_000.0
    #: Driver bookkeeping per chunk.
    CYCLES_DRIVER_PER_CHUNK = 8_000.0

    def __init__(self, n_points: int = 3_000, min_angle_deg: float = 26.0,
                 chunk: int = 6, seed: int = 12345) -> None:
        super().__init__(seed)
        if n_points < 16:
            raise AppError("dmr: need at least 16 points")
        if not (5.0 <= min_angle_deg <= 28.0):
            raise AppError("dmr: min_angle_deg must be in [5, 28] "
                           "(termination guarantee)")
        if chunk < 1:
            raise AppError("dmr: chunk must be >= 1")
        self.n_points = n_points
        self.min_angle_deg = min_angle_deg
        self.chunk = chunk
        rng = np.random.default_rng(seed)
        # Clustered input: skinny triangles concentrate between blobs.
        n_blobs = 5
        centers = rng.uniform(15, 85, size=(n_blobs, 2))
        counts = np.maximum(4, (rng.dirichlet(np.ones(n_blobs))
                                * n_points * 0.8).astype(int))
        pts = [rng.normal(centers[b], 2.5, size=(counts[b], 2))
               for b in range(n_blobs)]
        rest = rng.uniform(0, 100, size=(max(0, n_points
                                             - sum(counts)), 2))
        self._points = np.clip(np.vstack(pts + [rest])[:n_points],
                               0.0, 100.0)
        self.bounds = (0.0, 0.0, 100.0, 100.0)
        # Size floor: stop refining triangles smaller than this
        # circumradius (guarantees termination).
        self.r_min = 100.0 / math.sqrt(n_points) * 0.35
        self.mesh: Optional[DelaunayMesh] = None
        self._insertions = 0

    # -- shared refinement logic -------------------------------------------
    def _build_initial_mesh(self) -> DelaunayMesh:
        mesh = DelaunayMesh(self.bounds)
        for p in self._points:
            mesh.insert((float(p[0]), float(p[1])))
        return mesh

    def _is_refinable_bad(self, mesh: DelaunayMesh, tid: int) -> bool:
        """Interior, above the size floor, and below the angle target."""
        tri = mesh.triangles.get(tid)
        if tri is None:
            return False
        if set(tri) & set(mesh.super_vertices):
            return False
        if mesh.triangle_min_angle(tid) >= self.min_angle_deg:
            return False
        a, b, c = (mesh.vertices[v] for v in tri)
        try:
            cc = circumcenter(a, b, c)
        except ZeroDivisionError:  # pragma: no cover - degenerate
            return False
        r = math.hypot(cc[0] - a[0], cc[1] - a[1])
        if r <= self.r_min:
            return False
        # Boundary surrogate: skip hull-adjacent triangles whose
        # circumcentre falls outside the (slightly padded) domain —
        # full Ruppert boundary handling is out of scope (§IX-adjacent).
        xmin, ymin, xmax, ymax = self.bounds
        pad = 0.05 * max(xmax - xmin, ymax - ymin)
        return (xmin - pad <= cc[0] <= xmax + pad
                and ymin - pad <= cc[1] <= ymax + pad)

    def _refine_one(self, mesh: DelaunayMesh, tid: int) -> List[int]:
        """Insert the circumcentre of ``tid``; returns new triangle ids."""
        tri = mesh.triangles[tid]
        a, b, c = (mesh.vertices[v] for v in tri)
        cc = circumcenter(a, b, c)
        self._insertions += 1
        return mesh.insert(cc, hint=tid)

    def bad_triangles(self, mesh: DelaunayMesh) -> List[int]:
        """All currently refinable-bad triangle ids, sorted."""
        return sorted(t for t in mesh.interior_tids()
                      if self._is_refinable_bad(mesh, t))

    # -- oracle -------------------------------------------------------------
    def sequential(self) -> DelaunayMesh:
        """Sequential refinement to completion (worklist order)."""
        mesh = self._build_initial_mesh()
        work = self.bad_triangles(mesh)
        guard = 0
        while work:
            guard += 1
            if guard > 200_000:  # pragma: no cover - safety net
                raise AppError("dmr: sequential refinement diverged")
            tid = work.pop()
            if not self._is_refinable_bad(mesh, tid):
                continue
            new = self._refine_one(mesh, tid)
            work.extend(t for t in new
                        if self._is_refinable_bad(mesh, t))
        return mesh

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        P = ap.n_places
        mesh = self._build_initial_mesh()
        self.mesh = mesh
        scope = ap.finish("dmr")
        region_blocks = [ap.alloc(p, 8_192, f"dmrreg[{p}]")
                         for p in range(P)]

        def place_of_tid(tid: int) -> int:
            tri = mesh.triangles.get(tid)
            if tri is None:
                return 0
            xs = [mesh.vertices[v][0] for v in tri]
            x = sum(xs) / 3.0
            return min(P - 1, max(0, int(x / 100.0 * P)))

        def refine_body(tids: List[int]):
            def body(ctx) -> None:
                created: List[int] = []
                for tid in tids:
                    if not self._is_refinable_bad(mesh, tid):
                        continue
                    created.extend(self._refine_one(mesh, tid))
                new_bad = [t for t in created
                           if self._is_refinable_bad(mesh, t)]
                # Follow-up chunks run at this place: the cavity data is
                # already local to the (possibly thieving) executor.
                for i in range(0, len(new_bad), self.chunk):
                    part = new_bad[i:i + self.chunk]
                    ctx.spawn(
                        refine_body(part), place=ctx.place,
                        work=(self.CYCLES_PER_INSERT
                              + self.CYCLES_PER_CHECK) * len(part),
                        reads=[region_blocks[ctx.place]],
                        locality=FLEXIBLE, encapsulates=True,
                        closure_bytes=64 + 96 * len(part),
                        label="dmr-refine")
            return body

        initial = self.bad_triangles(mesh)
        by_place: Dict[int, List[int]] = {p: [] for p in range(P)}
        for tid in initial:
            by_place[place_of_tid(tid)].append(tid)

        def driver_body(p: int):
            def body(ctx) -> None:
                mine = by_place[p]
                for i in range(0, len(mine), self.chunk):
                    part = mine[i:i + self.chunk]
                    ctx.spawn(
                        refine_body(part), place=p,
                        work=(self.CYCLES_PER_INSERT
                              + self.CYCLES_PER_CHECK) * len(part),
                        reads=[region_blocks[p]],
                        locality=FLEXIBLE, encapsulates=True,
                        closure_bytes=64 + 96 * len(part),
                        label="dmr-refine")
            return body

        for p in range(P):
            if by_place[p]:
                ap.async_at(p, driver_body(p),
                            work=self.CYCLES_DRIVER_PER_CHUNK
                            * max(1, len(by_place[p]) // self.chunk),
                            label="dmr-driver", finish=scope)
        if not initial:
            ap.async_at(0, None, work=1_000.0, label="dmr-noop",
                        finish=scope)
        scope.close()

    # -- results -------------------------------------------------------------
    def result(self) -> DelaunayMesh:
        if self.mesh is None:
            raise AppError("dmr: run() has not been called")
        return self.mesh

    def validate(self) -> None:
        mesh = self.result()
        remaining = self.bad_triangles(mesh)
        self.check(not remaining,
                   f"{len(remaining)} refinable bad triangles remain")
        self.check(mesh.euler_check(), "Euler characteristic violated")
        self.check(mesh.check_delaunay(vertices_sample=40),
                   "Delaunay property violated")
        self.check(mesh.points_inserted >= self.n_points,
                   "original points lost")
