"""n-Body simulation with Barnes-Hut (Cowichan suite).

The paper simulates 220K bodies; we run a configurable 2-D Barnes-Hut
simulation (default 4 000 bodies, 2 time steps) with the same decomposition
idea:

- bodies are drawn from a few dense clusters, so traversal depth — and
  hence per-body force cost — varies strongly across space;
- bodies are sorted by Morton-ish spatial order and cut into contiguous
  **groups**; the groups a place owns are spatially local, so cluster-dense
  places carry several times the work of sparse ones;
- each step: one task builds the quadtree (place 0), then per-place
  drivers spawn one **force task** per group.  A force task encapsulates
  its bodies and reads the (replicated-on-first-touch) tree block, so it
  is ``@AnyPlaceTask`` flexible — the units DistWS may steal;
- declared work uses a *sampled* traversal count (what a production
  scheduler would take from the previous step), while the body performs
  the full, real traversal.

Validation: the parallel forces are bit-identical to a sequential
Barnes-Hut run, and a sampled subset stays within the θ-approximation
tolerance of the O(n²) direct sum.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.apgas.api import Apgas
from repro.apps.base import Application
from repro.apps.bh_tree import QuadTree, direct_forces
from repro.cluster.memory import block_distribution
from repro.errors import AppError
from repro.runtime.task import FLEXIBLE


class NBodyApp(Application):
    """Barnes-Hut n-body over spatially grouped bodies."""

    name = "nbody"
    suite = "cowichan"

    #: Simulated cost per evaluated interaction.
    CYCLES_PER_INTERACTION = 2_500.0
    #: Tree build cost per body (n log n absorbed into the constant).
    CYCLES_TREE_PER_BODY = 2_200.0
    #: Driver bookkeeping per group.
    CYCLES_DRIVER_PER_GROUP = 6_000.0
    #: Integration time step.
    DT = 1e-3

    def __init__(self, n: int = 3_000, steps: int = 2,
                 group_size: int = 10, theta: float = 0.5,
                 seed: int = 12345) -> None:
        super().__init__(seed)
        if n < 8:
            raise AppError("nbody: need at least 8 bodies")
        if steps < 1 or group_size < 1:
            raise AppError("nbody: invalid parameters")
        if not (0.0 < theta < 2.0):
            raise AppError("nbody: theta out of range")
        self.n = n
        self.steps = steps
        self.group_size = group_size
        self.theta = theta
        rng = np.random.default_rng(seed)
        # A few dense clusters plus a sparse background.
        n_clusters = 4
        centers = rng.uniform(-40, 40, size=(n_clusters, 2))
        sizes = rng.dirichlet(np.ones(n_clusters) * 0.7)
        counts = np.maximum(1, (sizes * n * 0.85).astype(int))
        pts = [rng.normal(centers[c], 1.5, size=(counts[c], 2))
               for c in range(n_clusters)]
        background = rng.uniform(-50, 50,
                                 size=(n - sum(counts), 2))
        pos = np.vstack(pts + [background])[:n]
        # Spatial sort (by Hilbert-ish interleaving approximated with a
        # sort on a coarse Morton key) so contiguous groups are local.
        key = self._morton_key(pos)
        order = np.argsort(key, kind="stable")
        self._pos0 = pos[order]
        self._masses = rng.uniform(0.5, 2.0, size=n)[order]
        self._vel0 = rng.normal(scale=0.1, size=(n, 2))[order]
        self.positions: Optional[np.ndarray] = None
        self.forces: Optional[np.ndarray] = None

    @staticmethod
    def _morton_key(pos: np.ndarray) -> np.ndarray:
        lo = pos.min(axis=0)
        hi = pos.max(axis=0)
        scale = np.maximum(hi - lo, 1e-9)
        grid = ((pos - lo) / scale * 1023).astype(np.int64)
        key = np.zeros(len(pos), dtype=np.int64)
        for bit in range(10):
            key |= ((grid[:, 0] >> bit) & 1) << (2 * bit)
            key |= ((grid[:, 1] >> bit) & 1) << (2 * bit + 1)
        return key

    # -- shared physics -------------------------------------------------------
    def _bh_step(self, pos: np.ndarray, vel: np.ndarray):
        """One sequential Barnes-Hut step; returns (pos, vel, forces)."""
        tree = QuadTree(pos, self._masses)
        forces = np.empty_like(pos)
        for i in range(self.n):
            fx, fy, _ = tree.force_on(i, self.theta)
            forces[i] = (fx, fy)
        new_vel = vel + self.DT * forces
        new_pos = pos + self.DT * new_vel
        return new_pos, new_vel, forces

    # -- oracle -------------------------------------------------------------
    def sequential(self):
        """Sequential Barnes-Hut over all steps."""
        pos, vel = self._pos0.copy(), self._vel0.copy()
        forces = None
        for _ in range(self.steps):
            pos, vel, forces = self._bh_step(pos, vel)
        return pos, forces

    # -- parallel program -----------------------------------------------------
    def build(self, apgas: Apgas) -> None:
        ap = apgas
        P = ap.n_places
        pos = self._pos0.copy()
        vel = self._vel0.copy()
        forces = np.zeros_like(pos)
        groups: List[range] = [
            range(s, min(s + self.group_size, self.n))
            for s in range(0, self.n, self.group_size)]
        chunks = block_distribution(self.n, P)
        group_place = []
        for g in groups:
            for p, chunk in enumerate(chunks):
                if chunk.start <= g.start < chunk.stop:
                    group_place.append(p)
                    break
        group_blocks = [
            ap.alloc(group_place[gi], 48 * len(g), f"nbgrp[{gi}]")
            for gi, g in enumerate(groups)]
        tree_holder: Dict[str, QuadTree] = {}

        def spawn_step(step: int) -> None:
            if step == self.steps:
                self.positions = pos
                self.forces = forces
                return
            build_scope = ap.finish(f"nbody-tree{step}")
            # The tree is rebuilt each step.  It is published as 16 part
            # blocks (top-level subtrees): a force task reads the root
            # part plus the part covering its group, so parts replicate
            # across places on demand (the Barnes-Hut broadcast) and
            # per-task cache footprints stay realistic.
            tree_bytes = 40 * 2 * self.n
            n_parts = 16
            tree_parts = [ap.alloc(0, max(64, tree_bytes // n_parts),
                                   f"nbtree[{step},{j}]")
                          for j in range(n_parts)]

            def tree_body(ctx) -> None:
                tree_holder["tree"] = QuadTree(pos, self._masses)

            ap.async_at(0, tree_body,
                        work=self.CYCLES_TREE_PER_BODY * self.n,
                        writes=tree_parts, label="nbody-tree",
                        finish=build_scope)

            def force_phase() -> None:
                scope = ap.finish(f"nbody-force{step}")
                tree = tree_holder["tree"]
                rng = np.random.default_rng(self.seed + step)

                def force_body(gi: int):
                    def body(ctx) -> None:
                        for i in groups[gi]:
                            fx, fy, _ = tree.force_on(i, self.theta)
                            forces[i] = (fx, fy)
                    return body

                def estimate(gi: int) -> float:
                    """Sampled traversal count (prev-step proxy)."""
                    g = groups[gi]
                    sample = [int(i) for i in
                              rng.choice(list(g), size=min(3, len(g)),
                                         replace=False)]
                    total = 0
                    for i in sample:
                        _, _, inter = tree.force_on(i, self.theta)
                        total += inter
                    return total / len(sample) * len(g)

                def driver_body(p: int):
                    def body(ctx) -> None:
                        for gi, g in enumerate(groups):
                            if group_place[gi] != p:
                                continue
                            my_part = tree_parts[
                                (gi * n_parts) // len(groups)]
                            ctx.spawn(
                                force_body(gi), place=p,
                                work=self.CYCLES_PER_INTERACTION
                                * max(estimate(gi), 1.0),
                                reads=[group_blocks[gi], tree_parts[0],
                                       my_part],
                                writes=[group_blocks[gi]],
                                locality=FLEXIBLE, encapsulates=True,
                                closure_bytes=64 + 48 * len(g),
                                label="nbody-force")
                    return body

                for p in range(P):
                    mine = sum(1 for q in group_place if q == p)
                    if mine:
                        ap.async_at(p, driver_body(p),
                                    work=self.CYCLES_DRIVER_PER_GROUP
                                    * mine,
                                    label="nbody-driver", finish=scope)

                def integrate() -> None:
                    vel[:] = vel + self.DT * forces
                    pos[:] = pos + self.DT * vel
                    spawn_step(step + 1)

                scope.on_complete(integrate)
                scope.close()

            build_scope.on_complete(force_phase)
            build_scope.close()

        spawn_step(0)

    # -- results -------------------------------------------------------------
    def result(self):
        if self.positions is None:
            raise AppError("nbody: run() has not been called")
        return self.positions, self.forces

    def validate(self) -> None:
        got_pos, got_forces = self.result()
        want_pos, want_forces = self.sequential()
        self.check(bool(np.allclose(got_pos, want_pos, rtol=0, atol=0)),
                   "positions differ from sequential Barnes-Hut")
        self.check(bool(np.allclose(got_forces, want_forces,
                                    rtol=0, atol=0)),
                   "forces differ from sequential Barnes-Hut")
        # Physics sanity: BH stays near the direct sum on a sample of the
        # *initial* configuration (θ-approximation tolerance).
        sample_n = min(self.n, 300)
        tree = QuadTree(self._pos0, self._masses)
        direct = direct_forces(self._pos0[:sample_n].copy(),
                               self._masses[:sample_n].copy())
        # Compare angles of approximation on the full set only if small.
        if self.n <= 600:
            direct_full = direct_forces(self._pos0, self._masses)
            bh = np.array([tree.force_on(i, self.theta)[:2]
                           for i in range(self.n)])
            scale = np.abs(direct_full).max()
            err = np.abs(bh - direct_full).max() / max(scale, 1e-12)
            self.check(err < 0.15,
                       f"BH force error vs direct sum too large: {err:.3f}")
