"""Scheduler policy interface.

A scheduler owns two decisions:

- **mapping** (:meth:`Scheduler.map_task`): which deque a freshly spawned
  task lands in (Algorithm 1 lines 1-8 for DistWS);
- **work finding** (:meth:`Scheduler.find_work`): what an idle worker does
  after its own private deque came up empty (Algorithm 1 lines 9-29).

``find_work`` is a *generator* run inside the worker's simulated process:
it yields timeouts / lock acquisitions to consume simulated time and
returns the acquired :class:`~repro.runtime.task.Task` (or ``None``).

The shared machinery for the three steal tiers (mailbox probe, co-located
victims, local shared deque, remote shared deques) lives here so concrete
policies compose the tiers rather than re-implement them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Generator, List, Optional

from repro.cluster.network import MSG_STEAL_REPLY, MSG_STEAL_REQUEST, MSG_TASK_SHIP
from repro.errors import SchedulerError
from repro.runtime.task import Task
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import SimRuntime
    from repro.runtime.worker import Worker

FindWork = Generator[Event, object, Optional[Task]]


class StealToken:
    """First-success-wins token shared by concurrent steal attempts.

    :class:`~repro.sched.multisteal.MultiStealWS` launches several remote
    take attempts at once; the first attempt to pull a non-empty chunk
    calls :meth:`claim`, and every other attempt observes
    :meth:`cancelled` at its own take point and withdraws empty-handed.
    The check → take → claim run happens in one synchronous step of the
    single-threaded engine (no yield in between), so at most one attempt
    sharing a token ever acquires work.
    """

    __slots__ = ("claimed",)

    def __init__(self) -> None:
        self.claimed = False

    def cancelled(self) -> bool:
        return self.claimed

    def claim(self) -> None:
        self.claimed = True


class Scheduler(ABC):
    """Base class for all work-stealing policies."""

    #: Human-readable policy name used in reports.
    name: str = "abstract"
    #: Tasks taken per successful *distributed* steal (§V-B3: chunk of 2).
    remote_chunk_size: int = 2
    #: Whether the policy ever steals across places.
    distributed: bool = True

    #: Bounded retry budget per victim when fault injection is active:
    #: a steal request that times out is retried at most this many times
    #: (with exponential backoff) before the victim is blacklisted.
    steal_max_retries: int = 2

    def __init__(self, remote_chunk_size: Optional[int] = None,
                 idle_threshold: Optional[int] = None,
                 idle_backoff_base: Optional[float] = None,
                 idle_backoff_cap: Optional[float] = None,
                 controller=None) -> None:
        if remote_chunk_size is not None:
            self.remote_chunk_size = int(remote_chunk_size)
        #: Tunable overrides (``repro.tune`` knobs); ``None`` keeps each
        #: runtime-derived default — one failed round per worker for the
        #: idle threshold, the cost model's idle backoff base/cap — so a
        #: knob-less construction is byte-identical to the paper's rules.
        self.idle_threshold = idle_threshold
        self.idle_backoff_base = idle_backoff_base
        self.idle_backoff_cap = idle_backoff_cap
        #: Optional online feedback controller
        #: (:mod:`repro.tune.controllers`); ``None`` (the default) means
        #: no hook ever fires.
        self.controller = controller
        self.rt: Optional["SimRuntime"] = None
        #: victim place id -> simulated time its blacklist entry expires.
        self._victim_blacklist: dict[int, float] = {}
        #: victim place id -> consecutive blacklist strikes; each strike
        #: doubles the next entry's span, a successful steal resets it.
        self._victim_strikes: dict[int, int] = {}

    def bind(self, runtime: "SimRuntime") -> None:
        """Attach the policy to a runtime (called once per run)."""
        self.rt = runtime
        self._victim_blacklist = {}
        self._victim_strikes = {}
        if self.idle_threshold is not None:
            for place in runtime.places:
                place.idle_threshold = self.idle_threshold
        if self.idle_backoff_base is not None:
            runtime.idle_backoff_base = float(self.idle_backoff_base)
            for place in runtime.places:
                for w in place.workers:
                    w.reset_backoff()
        if self.idle_backoff_cap is not None:
            runtime.idle_backoff_cap = float(self.idle_backoff_cap)
        if self.controller is not None:
            self.controller.bind(runtime, self)

    # -- online-controller hooks -------------------------------------------
    def note_failed_round(self, worker: "Worker") -> None:
        """A worker's whole steal round came up empty (called by the
        worker loop, after the place's failed-steal bookkeeping)."""
        if self.controller is not None:
            self.controller.on_failed_round(worker)

    def _note_steal_result(self, worker: "Worker", hit: bool,
                           latency: float, tasks: int) -> None:
        if self.controller is not None:
            self.controller.on_steal_result(worker, hit, latency, tasks)

    def _bound_runtime(self) -> "SimRuntime":
        """The bound runtime, or a clear error before :meth:`bind`."""
        if self.rt is None:
            raise SchedulerError("scheduler not bound")
        return self.rt

    # -- mapping -----------------------------------------------------------
    @abstractmethod
    def map_task(self, task: Task, from_worker: "Worker | None" = None) -> None:
        """Push ``task`` onto a deque at its home place.

        ``from_worker`` is the spawning worker, when the spawn happens
        inside a running activity; help-first mapping pushes same-place
        children onto the spawner's own deque so peers must *steal* them.
        """

    def mapping_cost(self, task: Task) -> float:
        """Cycles the spawning worker pays to map one child task."""
        return self._bound_runtime().costs.private_deque_op

    def _push_shared(self, task: Task) -> None:
        """Push onto the home place's shared deque and advertise surplus."""
        place = self.rt.places[task.home_place]
        place.shared.push(task)
        self.rt.board.advertise(place.place_id)

    def park_board(self) -> "object | None":
        """Status board a parking worker should watch, or ``None``.

        Distributed policies that consult the status board register the
        worker's park record with it so a starving worker wakes as soon
        as any place advertises stealable work.
        """
        if self.distributed and self.uses_status_board:
            return self.rt.board
        return None

    #: Whether the policy consults the status board before sending steal
    #: requests (DistWS family: yes; blind random / lifeline: no).
    uses_status_board: bool = True

    #: Whether the policy *guarantees* that locality-sensitive tasks
    #: execute at their home place (§X-A).  When True, the worker enforces
    #: the guarantee at execution time — any violation is a scheduler bug
    #: and aborts the run.  The non-selective control sets this False.
    enforces_locality: bool = True

    def _push_private(self, task: Task,
                      from_worker: "Worker | None" = None) -> None:
        """Default private-deque placement (help-first).

        A locally spawned task goes onto the spawning worker's own deque;
        a task arriving from elsewhere (root spawn, cross-place async)
        goes to the place's chosen private deque.
        """
        place = self.rt.places[task.home_place]
        if (from_worker is not None
                and from_worker.place.place_id == task.home_place):
            from_worker.deque.push(task)
        else:
            place.pick_private_deque().push(task)

    # -- work finding ------------------------------------------------------------
    #: Policy-specific continuation of :meth:`find_work` after the
    #: universal tiers (mailbox probe, co-located steal) have missed: a
    #: generator method, or ``None`` when the policy has no further tiers
    #: (X10WS).  Keeping the universal prefix in one place is what lets
    #: the flat kernel's :class:`~repro.sim.engine.KernelRound` scan
    #: execute it without resuming the worker's generator per probe.
    find_work_tail = None

    def find_work(self, worker: "Worker") -> FindWork:
        """Acquire a task for an idle worker, consuming simulated time.

        Tier 0 (home mailbox) and tier 1 (co-located private-deque steal)
        are identical across every policy; what follows a tier-1 miss is
        the policy's :attr:`find_work_tail`.  A policy that overrides
        ``find_work`` itself opts out of the kernel-resident scan (the
        worker checks ``type(scheduler).find_work`` identity).
        """
        task = self._probe_mailbox(worker)
        if task is not None:
            return task
        task = yield from self._steal_colocated(worker)
        if task is not None:
            return task
        tail = self.find_work_tail
        if tail is None:
            return None
        task = yield from tail(worker)
        return task

    # -- shared steal tiers -------------------------------------------------------
    def _probe_mailbox(self, worker: "Worker") -> Optional[Task]:
        """Tier 0: take a task shipped to this place from the network."""
        task = worker.place.mailbox.try_get()
        if task is not None:
            self.rt.stats.steals.mailbox_hits += 1
            if self.rt.obs is not None:
                self.rt.obs.emit("mailbox_get",
                                 place=worker.place.place_id,
                                 worker=worker.worker_index,
                                 task=task.task_id)
        return task  # type: ignore[return-value]

    def _steal_colocated(self, worker: "Worker") -> FindWork:
        """Tier 1: steal one task from a co-located worker's private deque."""
        rt = self.rt
        env = rt.env
        st = rt.stats.steals
        peers = worker.steal_peers
        if peers is None:
            peers = worker.steal_peers = [
                w for w in worker.place.workers if w is not worker]
        rng = worker.victims_rng
        if rng is None:
            rng = worker.victims_rng = rt.rngs.stream("victims", *worker.wid)
        order = rng.permutation(len(peers))
        obs = rt.obs
        for idx in order:
            victim = peers[int(idx)]
            st.local_attempts += 1
            if obs is not None:
                obs.emit("steal_attempt", tier="local",
                         place=worker.place.place_id,
                         worker=worker.worker_index,
                         victim=victim.worker_index)
            yield env.sleep(rt.costs.local_steal_attempt)
            worker.charge_overhead(rt.costs.local_steal_attempt)
            task = victim.deque.steal()
            if task is not None:
                yield env.sleep(rt.costs.local_steal_success)
                worker.charge_overhead(rt.costs.local_steal_success)
                st.local_hits += 1
                if obs is not None:
                    obs.emit("steal_hit", tier="local",
                             place=worker.place.place_id,
                             worker=worker.worker_index,
                             victim=victim.worker_index, tasks=1)
                return task
        return None

    def _steal_local_shared(self, worker: "Worker") -> FindWork:
        """Tier 2: take the oldest task from the place's own shared deque."""
        rt = self.rt
        env = rt.env
        shared = worker.place.shared
        rt.stats.steals.shared_local_attempts += 1
        if rt.obs is not None:
            rt.obs.emit("steal_attempt", tier="shared",
                        place=worker.place.place_id,
                        worker=worker.worker_index,
                        victim=worker.place.place_id)
        yield shared.lock.acquire()
        try:
            yield env.sleep(rt.costs.shared_deque_op)
            worker.charge_overhead(rt.costs.shared_deque_op)
            task = shared.take_oldest(remote=False)
            if len(shared) == 0:
                rt.board.retract(shared.place_id)
        finally:
            shared.lock.release()
        if task is not None:
            rt.stats.steals.shared_local_hits += 1
            if rt.obs is not None:
                rt.obs.emit("steal_hit", tier="shared",
                            place=worker.place.place_id,
                            worker=worker.worker_index,
                            victim=worker.place.place_id, tasks=1)
        return task

    def _steal_remote(self, worker: "Worker",
                      victim_order: List[int]) -> FindWork:
        """Tier 3: distributed steal from remote shared deques.

        Visits victims in ``victim_order``; between attempts, re-probes the
        home mailbox ("In case of a failed distributed steal, the thief
        first probes the network to see if any remote task has spawned
        tasks at its home place", §V-B2).  A hit takes a chunk of
        :attr:`remote_chunk_size` tasks: the first is returned, the rest
        are deposited in the home place's mailbox for peer workers.
        """
        rt = self.rt
        home = worker.place
        faulty = rt.faults is not None
        for pj in victim_order:
            if pj == home.place_id:
                raise SchedulerError("remote steal targeting own place")
            task = self._probe_mailbox(worker)
            if task is not None:
                return task
            if faulty and self._victim_blacklisted(pj):
                # Recently unresponsive (crashed or lossy): skip until the
                # blacklist entry decays.
                continue
            if self.uses_status_board and not rt.board.has_surplus(pj):
                # The §VI-B status object says the place has nothing to
                # steal: skip it without spending a round trip.
                continue
            if faulty:
                task = yield from self._attempt_remote_steal_faulty(
                    worker, pj)
            else:
                task = yield from self._attempt_remote_steal(worker, pj)
            if task is not None:
                return task
        return None

    def _chunk_request(self, shared) -> int:
        """How many tasks one distributed steal asks the victim for.

        Called at the take point, with the victim's shared deque locked,
        so steal-half policies can size the request against the deque's
        instantaneous length.  The default is the fixed paper chunk.
        """
        return self.remote_chunk_size

    def _take_locked(self, worker: "Worker", victim,
                     cancel: Optional[StealToken]):
        """Take a chunk under the victim's (held) shared-deque lock.

        Returns ``(chunk, cancelled)``.  With a :class:`StealToken`, the
        cancellation check, the take, and the claim form one synchronous
        step, so concurrent attempts sharing the token can never
        double-claim: the winner claims before any sibling's check runs.
        The winner also parks the chunk on ``worker.pending_chunk``
        immediately so a crash of the thief's place between the take and
        the ship relocates the tasks instead of losing them.
        """
        rt = self.rt
        if cancel is not None and (cancel.cancelled() or worker.place.dead):
            return [], True
        chunk = victim.shared.take_chunk(
            self._chunk_request(victim.shared), remote=True)
        if chunk and cancel is not None:
            cancel.claim()
            worker.pending_chunk = chunk
        if len(victim.shared) == 0:
            rt.board.retract(victim.place_id)
        return chunk, False

    def _emit_cancel(self, worker: "Worker", pj: int) -> None:
        if self.rt.obs is not None:
            self.rt.obs.emit("steal_cancel", place=worker.place.place_id,
                             worker=worker.worker_index, victim=pj)

    def _attempt_remote_steal(self, worker: "Worker", pj: int,
                              cancel: Optional[StealToken] = None) -> FindWork:
        """One distributed steal attempt on victim ``pj`` (reliable net)."""
        got = yield from self._remote_take(worker, pj, cancel)
        if got is None:
            return None
        chunk, request_time = got
        task = yield from self._ship_chunk_home(worker, pj, chunk,
                                                request_time=request_time)
        return task

    def _remote_take(self, worker: "Worker", pj: int,
                     cancel: Optional[StealToken] = None) -> FindWork:
        """Request/lock/take phase of a reliable-network distributed steal.

        Returns ``(chunk, request_time)`` on a hit, ``None`` on a miss or
        cancellation; shipping the chunk home is the caller's job, so
        multi-steal helpers can run several takes concurrently while the
        thief itself performs the single ship.
        """
        rt = self.rt
        env = rt.env
        costs = rt.costs
        st = rt.stats.steals
        obs = rt.obs
        home = worker.place
        victim = rt.places[pj]
        st.remote_attempts += 1
        request_time = env.now
        if obs is not None:
            obs.emit("steal_request", place=home.place_id,
                     worker=worker.worker_index, victim=pj)
        # Request message travels to the victim...
        yield env.sleep(rt.network.send(
            home.place_id, pj, 64, MSG_STEAL_REQUEST))
        # ...the thief locks the victim's shared deque remotely...
        yield victim.shared.lock.acquire()
        try:
            yield env.sleep(costs.remote_steal_service)
            worker.charge_overhead(costs.remote_steal_service)
            chunk, cancelled = self._take_locked(worker, victim, cancel)
        finally:
            victim.shared.lock.release()
        if cancelled:
            self._emit_cancel(worker, pj)
            return None
        if not chunk:
            yield env.sleep(rt.network.send(
                pj, home.place_id, 64, MSG_STEAL_REPLY))
            if obs is not None:
                obs.emit("steal_miss", place=home.place_id,
                         worker=worker.worker_index, victim=pj)
            self._note_steal_result(worker, False,
                                    env.now - request_time, 0)
            return None
        return chunk, request_time

    def _attempt_remote_steal_faulty(self, worker: "Worker", pj: int,
                                     cancel: Optional[StealToken] = None,
                                     ) -> FindWork:
        """One distributed steal attempt under fault injection.

        The request travels unreliably: a drop (or a crashed victim)
        costs the thief a ``steal_timeout`` wait, then a bounded number
        of retries with exponential backoff.  A victim that stays
        unresponsive is blacklisted (``victim_blacklist_cycles``,
        doubling per consecutive strike) so subsequent rounds skip it
        until the entry decays; a successful steal resets the strikes.
        """
        got = yield from self._remote_take_faulty(worker, pj, cancel)
        if got is None:
            return None
        chunk, request_time = got
        task = yield from self._ship_chunk_home(worker, pj, chunk,
                                                request_time=request_time)
        return task

    def _remote_take_faulty(self, worker: "Worker", pj: int,
                            cancel: Optional[StealToken] = None) -> FindWork:
        """Request/retry/take phase of a steal under fault injection.

        Same contract as :meth:`_remote_take`; additionally re-checks the
        cancellation token before every (re)send so a losing multi-steal
        helper stops burning retries once a sibling has claimed work.
        """
        rt = self.rt
        env = rt.env
        costs = rt.costs
        st = rt.stats.steals
        obs = rt.obs
        fstats = rt.faults.stats
        home = worker.place
        victim = rt.places[pj]
        retries = 0
        backoff = costs.steal_retry_backoff
        request_time: Optional[float] = None
        while True:
            if cancel is not None and (cancel.cancelled()
                                       or worker.place.dead):
                self._emit_cancel(worker, pj)
                return None
            if rt.faults.is_dead(pj):
                self._blacklist_victim(pj)
                if obs is not None and request_time is not None:
                    obs.emit("steal_miss", place=home.place_id,
                             worker=worker.worker_index, victim=pj)
                self._note_steal_result(
                    worker, False,
                    env.now - request_time if request_time is not None
                    else 0.0, 0)
                return None
            st.remote_attempts += 1
            if request_time is None:
                request_time = env.now
            if obs is not None:
                obs.emit("steal_request", place=home.place_id,
                         worker=worker.worker_index, victim=pj)
            latency, delivered = rt.network.send_unreliable(
                home.place_id, pj, 64, MSG_STEAL_REQUEST)
            if delivered:
                yield env.sleep(latency)
                break
            # The request vanished (dropped en route, or the victim died
            # under it): wait out the timeout, then back off and retry.
            yield env.sleep(costs.steal_timeout)
            fstats.steal_timeouts += 1
            if retries >= self.steal_max_retries:
                self._blacklist_victim(pj)
                if obs is not None:
                    obs.emit("steal_miss", place=home.place_id,
                             worker=worker.worker_index, victim=pj)
                self._note_steal_result(worker, False,
                                        env.now - request_time, 0)
                return None
            retries += 1
            fstats.steal_retries += 1
            fstats.backoff_cycles += backoff
            yield env.sleep(backoff)
            backoff *= 2
        yield victim.shared.lock.acquire()
        try:
            yield env.sleep(costs.remote_steal_service)
            worker.charge_overhead(costs.remote_steal_service)
            # A victim that crashed while the request was in flight has
            # had its deques drained; the chunk simply comes up empty.
            chunk, cancelled = self._take_locked(worker, victim, cancel)
        finally:
            victim.shared.lock.release()
        if cancelled:
            self._emit_cancel(worker, pj)
            return None
        if not chunk:
            latency, delivered = rt.network.send_unreliable(
                pj, home.place_id, 64, MSG_STEAL_REPLY)
            if delivered:
                yield env.sleep(latency)
            else:
                # The empty reply was lost; the thief learns nothing and
                # pays the timeout before moving on.
                yield env.sleep(costs.steal_timeout)
                fstats.steal_timeouts += 1
            if obs is not None:
                obs.emit("steal_miss", place=home.place_id,
                         worker=worker.worker_index, victim=pj)
            self._note_steal_result(worker, False,
                                    env.now - request_time, 0)
            return None
        self._note_steal_success(pj)
        return chunk, request_time

    def _ship_chunk_home(self, worker: "Worker", pj: int,
                         chunk: List[Task],
                         request_time: Optional[float] = None) -> FindWork:
        """Ship a stolen chunk to the thief's place; first task returned.

        Uses the reliable transport even under fault injection: the
        destination is the thief's own (live) place, so a dropped ship is
        transparently retransmitted rather than losing the closure.

        While the ship is in flight the tasks live nowhere the fault
        injector can see (they left the victim's deque, are not yet in
        the home mailbox, and are nobody's ``current_task``), so the
        chunk is parked on ``worker.pending_chunk``: a crash of the
        thief's place mid-transfer relocates it like any queued work.
        The hand-off out of ``pending_chunk`` is synchronous — the
        mailbox deposit happens in the same step, and the first task
        becomes the worker's ``current_task`` before its next yield.
        """
        rt = self.rt
        env = rt.env
        costs = rt.costs
        st = rt.stats.steals
        home = worker.place
        st.remote_hits += 1
        st.remote_tasks_received += len(chunk)
        worker.pending_chunk = chunk
        # Ship each stolen closure home (closure creation + transfer).
        delay = 0.0
        for t in chunk:
            delay += costs.closure_create
            worker.charge_overhead(costs.closure_create)
            delay += rt.network.send(
                pj, home.place_id, t.closure_bytes, MSG_TASK_SHIP)
        yield env.sleep(delay)
        worker.pending_chunk = []
        obs = rt.obs
        t0 = request_time if request_time is not None else env.now
        if obs is not None:
            obs.emit("chunk_arrive", place=home.place_id,
                     worker=worker.worker_index, victim=pj,
                     tasks=len(chunk), latency=env.now - t0)
        self._note_steal_result(worker, True, env.now - t0, len(chunk))
        first, rest = chunk[0], chunk[1:]
        for t in rest:
            home.mailbox.put(t)
            if obs is not None:
                obs.emit("mailbox_put", place=home.place_id, task=t.task_id)
        if rest:
            home.notify_work()
        return first

    # -- victim blacklist (fault injection) ---------------------------------
    def _victim_blacklisted(self, pj: int) -> bool:
        """Whether ``pj`` is currently blacklisted (entry decays with time)."""
        expiry = self._victim_blacklist.get(pj)
        if expiry is None:
            return False
        if self.rt.env.now >= expiry:
            del self._victim_blacklist[pj]
            return False
        return True

    def _blacklist_victim(self, pj: int) -> None:
        """Blacklist ``pj``, doubling the span per consecutive strike.

        The first strike lasts ``victim_blacklist_cycles``; every further
        strike without an intervening successful steal doubles the span
        (capped), so a dead place is probed geometrically less often.
        :meth:`_note_steal_success` resets the strike count.
        """
        rt = self.rt
        strikes = self._victim_strikes.get(pj, 0)
        span = rt.costs.victim_blacklist_cycles * (2 ** min(strikes, 16))
        self._victim_blacklist[pj] = rt.env.now + span
        self._victim_strikes[pj] = strikes + 1
        rt.faults.stats.blacklists += 1

    def _note_steal_success(self, pj: int) -> None:
        """A steal from ``pj`` succeeded: clear its strike history."""
        self._victim_strikes.pop(pj, None)

    # -- collapsed failed round (flat-kernel fast path) ------------------------
    #: Whether this policy's ``find_work`` follows the canonical tier shape
    #: :meth:`fast_round` models — mailbox probe, co-located scan, optional
    #: shared-deque take, board-gated remote tier.  Only the audited
    #: built-in policies opt in; a subclass with a custom ``find_work``
    #: keeps the legacy per-probe path unless it opts in itself.
    _fast_round_ok: bool = False
    #: Whether ``find_work`` includes the local shared-deque tier.
    _fast_shared_tier: bool = True

    def _fast_remote_ok(self, worker: "Worker") -> bool:
        """Whether this round's remote tier is provably a no-op."""
        rt = self.rt
        if not self.distributed or rt.spec.n_places <= 1:
            return True
        if not self.uses_status_board:
            # Blind policies (random victims, lifelines) send real steal
            # traffic regardless of surplus: never collapsible.
            return False
        return not rt.board.has_surplus_other(worker.place.place_id)

    def _fast_remote_commit(self, worker: "Worker") -> None:
        """Replay the remote tier's RNG draws for an all-skip round."""
        if self.distributed and self.rt.spec.n_places > 1:
            self._random_place_order(worker)

    def fast_round(self, worker: "Worker"):
        """Collapse one provably-failed steal round into a single sleep.

        Called by the worker loop (flat kernel, no faults, no observer)
        *instead of* the deque pop + :meth:`find_work` generator.  When
        every tier is empty and no other heap entry comes due before the
        round would end, the legacy round is a fixed script — a known
        sequence of sleeps, counter bumps, and RNG draws whose outcome is
        already determined — so this method commits those side effects
        synchronously and returns the round's end time for one
        ``sleep_at``.  Returns ``None`` when the round might find work or
        interleave with any other process; the caller then runs the exact
        legacy path.

        The commit must replicate *every* observable side effect in the
        legacy order: simulated-time float adds, overhead-cycle adds,
        steal-stat counters, the uncontended shared-lock acquire, the
        board retract, victim-RNG draws, and the engine's seq/event
        accounting.  The golden differential suite is the proof.
        """
        place = worker.place
        if worker.deque._items or place.mailbox._items:
            return None
        rt = self.rt
        env = rt.env
        costs = rt.costs
        peers = worker.steal_peers
        if peers is None:
            peers = worker.steal_peers = [
                w for w in place.workers if w is not worker]
        n = len(peers)
        # The round's timeline, float-added in the legacy sleep order.
        t = env._now + costs.private_deque_op
        la = costs.local_steal_attempt
        for _ in range(n):
            t = t + la
        shared_tier = self._fast_shared_tier
        if shared_tier:
            t = t + costs.shared_deque_op
        if env.peek() <= t:
            # Something else dispatches before the round would end (work
            # arriving, a peer's probe, the stop event): no collapse.
            return None
        for p in peers:
            if p.deque._items:
                return None
        if shared_tier:
            shared = place.shared
            if shared._items or shared.lock._locked or shared.lock._waiters:
                return None
        if not self._fast_remote_ok(worker):
            return None
        # -- commit ---------------------------------------------------------
        rng = worker.victims_rng
        if rng is None:
            rng = worker.victims_rng = rt.rngs.stream("victims", *worker.wid)
        rng.permutation(n)
        st = rt.stats.steals
        st.local_attempts += n
        oc = worker.overhead_cycles + costs.private_deque_op
        for _ in range(n):
            oc = oc + la
        n_seq = n + 1  # the deque-op sleep + one sleep per co-located probe
        if shared_tier:
            st.shared_local_attempts += 1
            shared.lock.total_acquires += 1
            oc = oc + costs.shared_deque_op
            rt.board.retract(place.place_id)
            n_seq += 2  # the uncontended lock-acquire event + the op sleep
        worker.overhead_cycles = oc
        self._fast_remote_commit(worker)
        # The caller issues one sleep_at(t) — one push, one dispatch — in
        # place of the round's n_seq entries: account for the rest here.
        env._seq += n_seq - 1
        env.events_processed += n_seq - 1
        return t

    # -- victim orders ---------------------------------------------------------
    def _random_place_order(self, worker: "Worker") -> List[int]:
        """All other places in a per-worker random order."""
        others = worker.other_places
        if others is None:
            others = worker.other_places = [
                p for p in range(self.rt.spec.n_places)
                if p != worker.place.place_id]
        rng = worker.place_victims_rng
        if rng is None:
            rng = worker.place_victims_rng = self.rt.rngs.stream(
                "place-victims", *worker.wid)
        return [others[int(i)] for i in rng.permutation(len(others))]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Scheduler {self.name}>"
