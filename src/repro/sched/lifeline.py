"""Lifeline-based global load balancing (Saraswat et al., PPoPP'11).

The related-work comparator for UTS (§X).  Two-step balancing:

1. an idle place first performs ``w`` random steal attempts;
2. if all fail, it *quiesces*: it registers itself with the places on its
   outgoing lifeline edges (a cyclic hypercube over places) and stops
   polling the network. "Work arrives from a lifeline and is pushed by the
   nodes onto all their active outgoing lifelines."

A place that maps new work while lifeliners are registered on it pushes
surplus tasks directly to those places' mailboxes, which wakes their parked
workers.  Because a missed steal *does* help future steals (the lifeline
registration persists), lifeline balancing beats unorganized random
stealing on UTS — and, per the paper, also beats DistWS there.

The push happens at mapping time (outside any simulated process), so its
network latency is counted in messages/bytes but not added to the mapper's
simulated critical path — a deliberate, documented approximation that only
*favours* the lifeline scheduler, consistent with the paper's finding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.cluster.network import MSG_TASK_SHIP
from repro.runtime.task import Task
from repro.sched.base import FindWork, Scheduler
from repro.sched.distws import DistWS

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


def lifeline_graph(n_places: int) -> Dict[int, List[int]]:
    """Outgoing lifeline edges: cyclic hypercube (power-of-two strides)."""
    edges: Dict[int, List[int]] = {p: [] for p in range(n_places)}
    if n_places < 2:
        return edges
    stride = 1
    while stride < n_places:
        for p in range(n_places):
            target = (p + stride) % n_places
            if target != p and target not in edges[p]:
                edges[p].append(target)
        stride *= 2
    return edges


class LifelineWS(DistWS):
    """Random stealing + lifeline registration/push, on DistWS's deques."""

    name = "Lifeline"
    remote_chunk_size = 1
    distributed = True
    #: Random phase is blind; lifelines are the repair mechanism (§X).
    #: ``uses_status_board = False`` also means the collapsed-round fast
    #: path (inherited via DistWS) only ever fires single-place: with
    #: peers to rob blindly, a failed round sends real steal traffic and
    #: registers lifelines, so ``_fast_remote_ok`` rejects it.
    uses_status_board = False

    def __init__(self, attempts_per_round: int = 2, **knobs) -> None:
        super().__init__(remote_chunk_size=1, **knobs)
        self.attempts_per_round = attempts_per_round
        #: place -> set of places that registered a lifeline *on* it and
        #: are waiting for a push.
        self._waiting_on: Dict[int, Set[int]] = {}
        self._out_edges: Dict[int, List[int]] = {}

    def bind(self, runtime) -> None:
        super().bind(runtime)
        n = runtime.spec.n_places
        self._out_edges = lifeline_graph(n)
        self._waiting_on = {p: set() for p in range(n)}

    # -- mapping + push -------------------------------------------------------
    def map_task(self, task: Task, from_worker=None) -> None:
        super().map_task(task, from_worker)
        self._push_to_lifelines(task.home_place)

    def _push_to_lifelines(self, place_id: int) -> None:
        """Hand surplus shared-deque tasks to registered lifeliners."""
        waiters = self._waiting_on[place_id]
        if not waiters:
            return
        place = self.rt.places[place_id]
        # Keep at least one task locally; push the rest to waiters.
        while len(place.shared) > 1 and waiters:
            # Deterministic: serve the lowest place id first.
            target = min(waiters)
            if not place.shared.lock.try_acquire():
                return  # deque busy in simulated time: skip this push
            try:
                task = place.shared.take_oldest(remote=True)
                if len(place.shared) == 0:
                    self.rt.board.retract(place_id)
            finally:
                place.shared.lock.release()
            if task is None:
                return
            waiters.discard(target)
            self.rt.network.send(place_id, target,
                                 task.closure_bytes, MSG_TASK_SHIP)
            dest = self.rt.places[target]
            dest.mailbox.put(task)
            if self.rt.obs is not None:
                self.rt.obs.emit("mailbox_put", place=target,
                                 task=task.task_id)
            dest.notify_work()
            self.rt.stats.steals.remote_tasks_received += 1

    # -- work finding ------------------------------------------------------------
    def find_work_tail(self, worker: "Worker") -> FindWork:
        task = yield from self._steal_local_shared(worker)
        if task is not None:
            return task
        if self.rt.spec.n_places > 1:
            rng = self.rt.rngs.stream("lifeline-victims", *worker.wid)
            others = [p for p in range(self.rt.spec.n_places)
                      if p != worker.place.place_id]
            victims = [others[int(rng.integers(len(others)))]
                       for _ in range(self.attempts_per_round)]
            task = yield from self._steal_remote(worker, victims)
            if task is not None:
                return task
            # Quiesce: register on every outgoing lifeline.
            me = worker.place.place_id
            for target in self._out_edges.get(me, ()):
                self._waiting_on[target].add(me)
        return None
