"""X10WS: the baseline X10 2.2 scheduler.

Help-first work stealing that "operates only within a place" (§III):

- every task — the locality annotation is ignored — maps to a private
  deque at its home place;
- an idle worker steals only from co-located workers; there is no shared
  deque traffic and no cross-place stealing, so inter-node imbalance can
  never be repaired (the effect Fig. 7 shows as ~35% utilization
  disparity).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime.task import Task
from repro.sched.base import FindWork, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class X10WS(Scheduler):
    """Intra-place help-first work stealing (the paper's baseline)."""

    name = "X10WS"
    distributed = False
    #: Collapsed-round fast path: the shape is mailbox probe + co-located
    #: scan only — no shared-deque tier, no remote tier.
    _fast_round_ok = True
    _fast_shared_tier = False

    def map_task(self, task: Task, from_worker=None) -> None:
        self._push_private(task, from_worker)

    # Work finding is the base prefix and nothing else: mailbox probe
    # (remote asyncs still have to arrive somehow — X10 delivers the
    # shipped activity at its destination place, and the mailbox models
    # that delivery path even though X10WS never steals through it) plus
    # the co-located steal.  No shared-deque tier, no remote tier.
    find_work_tail = None
