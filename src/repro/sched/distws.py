"""DistWS: the paper's contribution (Algorithm 1).

Mapping (lines 1-8):

- locality-sensitive task -> a private deque at its home place;
- locality-flexible task  -> a private deque if the home place is inactive,
  has spare workers, or sits below its thread bound (``¬isActive(p) or
  spares > 0 or size(p) < max_threads``); otherwise the place's shared
  deque, making it available for distributed stealing.

Work finding (lines 9-29), in strict order:

1. own private deque (done by the worker before calling the policy);
2. probe the network for tasks shipped to this place;
3. steal from co-located workers (single task, LIFO victim deque's old end);
4. steal from the local shared deque (FIFO — the oldest, coarsest task);
5. distributed stealing: visit remote places' shared deques, chunk of 2,
   re-probing the home mailbox between failed attempts.

The selectivity guarantee — a sensitive task can never leave its place —
is structural: sensitive tasks only ever enter private deques, and remote
thieves only ever touch shared deques.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime.task import Task
from repro.sched.base import FindWork, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.place import Place
    from repro.runtime.worker import Worker


class DistWS(Scheduler):
    """Selective locality-aware distributed work stealing (Algorithm 1)."""

    name = "DistWS"
    remote_chunk_size = 2
    distributed = True
    #: Canonical tier shape: the collapsed-round fast path may model it.
    _fast_round_ok = True

    def __init__(self, remote_chunk_size: int = 2,
                 shared_fifo: bool = True,
                 victim_order: str = "random",
                 underutil_threshold: Optional[int] = None,
                 **knobs) -> None:
        super().__init__(remote_chunk_size=remote_chunk_size, **knobs)
        #: Ablation knob: ``False`` makes steals take the *newest* shared
        #: task instead of the oldest (benchmarks/test_ablation_deques).
        self.shared_fifo = shared_fifo
        #: Victim traversal order for distributed steals: ``"random"``
        #: (the paper's default — on a fully connected cluster the order
        #: "does not profoundly impact the total cost", §I) or
        #: ``"nearest"`` (footnote 2's recommendation for non-fully
        #: connected topologies like rings).
        if victim_order not in ("random", "nearest"):
            raise ValueError(f"unknown victim_order {victim_order!r}")
        self.victim_order = victim_order
        #: Shared-deque admission knob: a flexible task stays on a
        #: private deque while ``size(p)`` is below this; ``None`` keeps
        #: the paper's rule (``size(p) < max_threads``).
        self.underutil_threshold = underutil_threshold

    def _keep_local(self, place: "Place") -> bool:
        """Algorithm 1's keep-it-local predicate, with a tunable bound."""
        if (not place.active) or place.spares() > 0:
            return True
        if self.underutil_threshold is not None:
            return place.size() < self.underutil_threshold
        return place.is_under_utilized()

    # -- mapping (Algorithm 1 lines 1-8) ------------------------------------
    def map_task(self, task: Task, from_worker=None) -> None:
        place = self.rt.places[task.home_place]
        if not task.is_flexible:
            self._push_private(task, from_worker)
            return
        if self._keep_local(place):
            # Idle/under-utilized place: keep the flexible task local to
            # prioritize the place's own cores (§V-B1 benefit i/ii).
            # pick_private_deque prefers an *idle* worker, eliminating the
            # steal that worker would otherwise need.
            place.pick_private_deque().push(task)
        else:
            if not self.shared_fifo:
                # LIFO-shared ablation: push at the steal end instead.
                place.shared.push_front(task)
                self.rt.board.advertise(place.place_id)
            else:
                self._push_shared(task)

    def mapping_cost(self, task: Task) -> float:
        rt = self._bound_runtime()
        costs = rt.costs
        if not task.is_flexible:
            return costs.private_deque_op
        # Consulting the place-status object plus the (possibly shared)
        # deque operation.
        place = rt.places[task.home_place]
        base = costs.locality_mapping_overhead
        if self._keep_local(place):
            return base + costs.private_deque_op
        return base + costs.shared_deque_op

    def _fast_remote_commit(self, worker: "Worker") -> None:
        # ``nearest`` victim order is deterministic (footnote 2's
        # distance-sorted list): an all-skip remote tier draws no RNG.
        if (self.distributed and self.rt.spec.n_places > 1
                and self.victim_order != "nearest"):
            self._random_place_order(worker)

    # -- work finding (Algorithm 1 lines 9-29; tiers 0-1 live in the base
    # find_work, this is everything after a co-located miss) --------------------
    def find_work_tail(self, worker: "Worker") -> FindWork:
        task = yield from self._steal_local_shared(worker)
        if task is not None:
            return task
        if self.rt.spec.n_places > 1:
            if self.victim_order == "nearest":
                order = self.rt.spec.neighbours_by_distance(
                    worker.place.place_id)
            else:
                order = self._random_place_order(worker)
            task = yield from self._steal_remote(worker, order)
        return task
