"""MultiStealWS: k concurrent outstanding steal requests, first-success-wins.

With non-trivial steal latency λ, a thief that probes victims one round
trip at a time pays k·λ to find the one victim in k with surplus;
launching the k requests concurrently pays ~λ for the same coverage.
This is the "multiple steal requests in flight" strategy analysed by
Khatiri et al. for latency-bound work stealing: the thief keeps up to
``steal_width`` take requests outstanding, accepts the first one that
returns work, and cancels the rest.

Cancellation runs through the resilient-steal path of PR 1: every
concurrent attempt shares one :class:`~repro.sched.base.StealToken`; the
winner claims it atomically with its deque take, and each loser observes
the claim at its own take point (or before its next fault-injection
retry) and withdraws empty-handed, emitting a ``steal_cancel`` event.
Only the thief itself ships the winning chunk home, so the
``pending_chunk`` crash-visibility protocol keeps its single writer and
exactly-once completion holds under fault plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import SchedulerError
from repro.sched.base import FindWork, StealToken
from repro.sched.distws import DistWS

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class MultiStealWS(DistWS):
    """DistWS variant with ``steal_width`` concurrent steal requests."""

    name = "MultiStealWS"
    # Collapsed-round note: with no victim advertising surplus, the
    # batch-build loop skips every place without yielding or drawing
    # (the per-batch mailbox re-probe has no miss counters), so an
    # all-skip round is observably identical to DistWS's — the inherited
    # _fast_round_ok/_fast_remote_commit apply unchanged.

    def __init__(self, steal_width: int = 2, **knobs) -> None:
        super().__init__(**knobs)
        if int(steal_width) < 1:
            raise ValueError(f"steal_width must be >= 1, got {steal_width!r}")
        #: Maximum steal requests simultaneously in flight per thief.
        self.steal_width = int(steal_width)

    def _make_token(self) -> StealToken:
        """Seam for tests: one token per concurrent request round."""
        return StealToken()

    def find_work_tail(self, worker: "Worker") -> FindWork:
        task = yield from self._steal_local_shared(worker)
        if task is not None:
            return task
        if self.rt.spec.n_places > 1:
            if self.victim_order == "nearest":
                order = self.rt.spec.neighbours_by_distance(
                    worker.place.place_id)
            else:
                order = self._random_place_order(worker)
            task = yield from self._steal_remote_multi(worker, order)
        return task

    def _steal_remote_multi(self, worker: "Worker",
                            victim_order: List[int]) -> FindWork:
        """Tier 3 with up to ``steal_width`` requests in flight.

        Victims are consumed from ``victim_order`` in batches; each batch
        runs the take phase of every member as its own simulated process
        and the thief waits on the composite, shipping the first chunk
        that arrives.  Losers keep unwinding in the background but can
        never acquire work once the round's token is claimed.
        """
        rt = self.rt
        env = rt.env
        home = worker.place
        faulty = rt.faults is not None
        idx, n = 0, len(victim_order)
        while idx < n:
            task = self._probe_mailbox(worker)
            if task is not None:
                return task
            batch: List[int] = []
            while idx < n and len(batch) < self.steal_width:
                pj = victim_order[idx]
                idx += 1
                if pj == home.place_id:
                    raise SchedulerError("remote steal targeting own place")
                if faulty and self._victim_blacklisted(pj):
                    continue
                if self.uses_status_board and not rt.board.has_surplus(pj):
                    continue
                batch.append(pj)
            if not batch:
                continue
            if len(batch) == 1:
                # A lone eligible victim needs no token: fall back to the
                # ordinary sequential attempt.
                if faulty:
                    task = yield from self._attempt_remote_steal_faulty(
                        worker, batch[0])
                else:
                    task = yield from self._attempt_remote_steal(
                        worker, batch[0])
                if task is not None:
                    return task
                continue
            token = self._make_token()
            take = (self._remote_take_faulty if faulty
                    else self._remote_take)
            procs = [(pj, env.process(take(worker, pj, cancel=token)))
                     for pj in batch]
            pending = [proc for _, proc in procs]
            won = None
            while pending and won is None:
                yield env.any_of(pending)
                still = []
                for pj, proc in procs:
                    if proc not in pending:
                        continue
                    if proc.triggered:
                        got = proc.value
                        if got is not None and won is None:
                            won = (pj, got)
                    else:
                        still.append(proc)
                pending = still
            if won is not None:
                pj, (chunk, request_time) = won
                task = yield from self._ship_chunk_home(
                    worker, pj, chunk, request_time=request_time)
                return task
        return None
