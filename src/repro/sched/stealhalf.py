"""StealHalfWS: steal-half distributed work stealing.

The classic steal-half strategy (Hendler/Shavit) applied to the paper's
selective-locality runtime: instead of the fixed ``remote_chunk_size``
chunk of §V-B3, a successful distributed steal takes ``ceil(n/2)`` of the
victim's shared deque's ``n`` tasks — the oldest half, preserving the
FIFO-coarseness argument of §V-B2.  Gast/Khatiri/Trystram's latency
analysis (arXiv 1805.01768) models exactly this amortization: each steal
costs one λ round trip but halves the load imbalance, so the latency term
of the makespan stays O(λ·log₂ W) with a smaller constant than
unit-chunk stealing when victims hold deep deques.

Everything else — mapping, the tier order, selectivity — is inherited
from :class:`~repro.sched.distws.DistWS`; only the chunk-size decision at
the (locked) take point differs, via :meth:`Scheduler._chunk_request`.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.distws import DistWS


class StealHalfWS(DistWS):
    """DistWS variant whose distributed steals take half the victim deque."""

    name = "StealHalfWS"
    # Collapsed-round note: the chunk-size decision only exists at a
    # successful take point, which a collapsed (provably-failed) round
    # never reaches — DistWS's fast-path hooks are inherited unchanged.

    def __init__(self, shared_fifo: bool = True,
                 victim_order: str = "random",
                 underutil_threshold: Optional[int] = None,
                 **knobs) -> None:
        super().__init__(remote_chunk_size=2, shared_fifo=shared_fifo,
                         victim_order=victim_order,
                         underutil_threshold=underutil_threshold, **knobs)

    def _chunk_request(self, shared) -> int:
        # ceil(n/2) of the instantaneous deque length, measured under the
        # victim's lock.  An empty deque requests 0 (the take comes up
        # empty and the attempt resolves as an ordinary miss).
        return -(-len(shared) // 2)
