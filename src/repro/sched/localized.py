"""LocalizedWS: bounded-radius distributed stealing with escape hatch.

Suksompong/Leiserson/Schardl's *localized work stealing* observes that on
a non-uniform interconnect a thief should prefer victims it can reach
cheaply; the paper's own footnote 2 recommends nearest-first probing on
rings.  This policy makes the preference a hard bound: distributed steal
rounds only visit places within ``steal_radius`` hops
(:meth:`ClusterSpec.hop_distance`), in a per-worker random order drawn
from a dedicated RNG stream.  Starvation inside a work-starved
neighbourhood is bounded by ``radius_strikes``: after that many
*consecutive* failed local rounds a worker runs one unrestricted global
round (emitting a ``radius_fallback`` event), then resumes local probing
with its strike count cleared.

On a fully connected topology every place sits at hop distance 1, so any
``steal_radius >= 1`` makes the policy behave like DistWS with random
victim order (the fallback never fires); the radius only bites on rings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sched.base import FindWork
from repro.sched.distws import DistWS

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class LocalizedWS(DistWS):
    """DistWS variant with a bounded steal radius over cluster distances."""

    name = "LocalizedWS"

    def __init__(self, steal_radius: int = 2, radius_strikes: int = 3,
                 remote_chunk_size: int = 2,
                 underutil_threshold: Optional[int] = None,
                 **knobs) -> None:
        super().__init__(remote_chunk_size=remote_chunk_size,
                         victim_order="random",
                         underutil_threshold=underutil_threshold, **knobs)
        if int(steal_radius) < 1:
            raise ValueError(
                f"steal_radius must be >= 1, got {steal_radius!r}")
        if int(radius_strikes) < 1:
            raise ValueError(
                f"radius_strikes must be >= 1, got {radius_strikes!r}")
        #: Maximum hop distance of a regular-round victim.
        self.steal_radius = int(steal_radius)
        #: Consecutive failed local rounds before one global round.
        self.radius_strikes = int(radius_strikes)
        #: worker wid -> consecutive failed local rounds.
        self._strikes: Dict[Tuple[int, int], int] = {}
        #: worker wid -> dedicated victim-shuffle RNG.
        self._radius_rngs: Dict[Tuple[int, int], object] = {}
        #: place id -> places within ``steal_radius`` hops (static).
        self._neighbourhoods: Dict[int, List[int]] = {}

    def bind(self, runtime) -> None:
        super().bind(runtime)
        self._strikes = {}
        self._radius_rngs = {}
        spec = runtime.spec
        self._neighbourhoods = {
            pi: [pj for pj in range(spec.n_places)
                 if pj != pi and spec.hop_distance(pi, pj)
                 <= self.steal_radius]
            for pi in range(spec.n_places)}

    def _fast_remote_commit(self, worker: "Worker") -> None:
        # A collapsed all-skip round still consumes this round's victim
        # shuffle and advances the strike ledger exactly as find_work
        # would have: a fallback round draws the global order and clears
        # the strikes; a regular (missed) round draws the radius order
        # and adds a strike.
        if self.rt.spec.n_places <= 1:
            return
        wid = worker.wid
        strikes = self._strikes.get(wid, 0)
        if strikes >= self.radius_strikes:
            self._random_place_order(worker)
            self._strikes[wid] = 0
        else:
            self._local_order(worker)
            self._strikes[wid] = strikes + 1

    def _local_order(self, worker: "Worker") -> List[int]:
        """The worker's in-radius victims, freshly shuffled."""
        wid = worker.wid
        rng = self._radius_rngs.get(wid)
        if rng is None:
            rng = self._radius_rngs[wid] = self.rt.rngs.stream(
                "localized-victims", *wid)
        neighbourhood = self._neighbourhoods[worker.place.place_id]
        return [neighbourhood[int(i)]
                for i in rng.permutation(len(neighbourhood))]

    def find_work_tail(self, worker: "Worker") -> FindWork:
        task = yield from self._steal_local_shared(worker)
        if task is not None:
            return task
        if self.rt.spec.n_places > 1:
            wid = worker.wid
            strikes = self._strikes.get(wid, 0)
            if strikes >= self.radius_strikes:
                # Escape hatch: one unrestricted round, then start over.
                if self.rt.obs is not None:
                    self.rt.obs.emit("radius_fallback",
                                     place=worker.place.place_id,
                                     worker=worker.worker_index,
                                     strikes=strikes)
                task = yield from self._steal_remote(
                    worker, self._random_place_order(worker))
                self._strikes[wid] = 0
            else:
                task = yield from self._steal_remote(
                    worker, self._local_order(worker))
                self._strikes[wid] = 0 if task is not None else strikes + 1
        return task
