"""Work-stealing scheduler policies.

- :class:`DistWS` — the paper's Algorithm 1 (selective locality-aware
  distributed stealing);
- :class:`X10WS` — X10 2.2 baseline (intra-place only);
- :class:`DistWSNS` — non-selective control (round-robin deque mapping);
- :class:`RandomWS` — unorganized randomized distributed stealing;
- :class:`LifelineWS` — lifeline-graph load balancing (UTS comparator);
- :class:`StealHalfWS` — steal-half chunks (ceil of half the victim deque);
- :class:`MultiStealWS` — k concurrent steal requests, first-success-wins;
- :class:`LocalizedWS` — bounded steal radius with strike-based fallback.
"""

from repro.sched.adaptive import AdaptiveDistWS
from repro.sched.base import Scheduler, StealToken
from repro.sched.distws import DistWS
from repro.sched.distws_ns import DistWSNS
from repro.sched.lifeline import LifelineWS, lifeline_graph
from repro.sched.localized import LocalizedWS
from repro.sched.multisteal import MultiStealWS
from repro.sched.randomws import RandomWS
from repro.sched.stealhalf import StealHalfWS
from repro.sched.x10ws import X10WS

#: Registry used by the harness and CLI entry points.
SCHEDULERS = {
    "X10WS": X10WS,
    "DistWS": DistWS,
    "DistWS-NS": DistWSNS,
    "RandomWS": RandomWS,
    "Lifeline": LifelineWS,
    "AdaptiveDistWS": AdaptiveDistWS,
    "StealHalfWS": StealHalfWS,
    "MultiStealWS": MultiStealWS,
    "LocalizedWS": LocalizedWS,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}") from None
    return cls(**kwargs)


__all__ = [
    "AdaptiveDistWS",
    "DistWS",
    "DistWSNS",
    "LifelineWS",
    "LocalizedWS",
    "MultiStealWS",
    "RandomWS",
    "SCHEDULERS",
    "Scheduler",
    "StealHalfWS",
    "StealToken",
    "X10WS",
    "lifeline_graph",
    "make_scheduler",
]
