"""Work-stealing scheduler policies.

- :class:`DistWS` — the paper's Algorithm 1 (selective locality-aware
  distributed stealing);
- :class:`X10WS` — X10 2.2 baseline (intra-place only);
- :class:`DistWSNS` — non-selective control (round-robin deque mapping);
- :class:`RandomWS` — unorganized randomized distributed stealing;
- :class:`LifelineWS` — lifeline-graph load balancing (UTS comparator).
"""

from repro.sched.adaptive import AdaptiveDistWS
from repro.sched.base import Scheduler
from repro.sched.distws import DistWS
from repro.sched.distws_ns import DistWSNS
from repro.sched.lifeline import LifelineWS, lifeline_graph
from repro.sched.randomws import RandomWS
from repro.sched.x10ws import X10WS

#: Registry used by the harness and CLI entry points.
SCHEDULERS = {
    "X10WS": X10WS,
    "DistWS": DistWS,
    "DistWS-NS": DistWSNS,
    "RandomWS": RandomWS,
    "Lifeline": LifelineWS,
    "AdaptiveDistWS": AdaptiveDistWS,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}") from None
    return cls(**kwargs)


__all__ = [
    "AdaptiveDistWS",
    "DistWS",
    "DistWSNS",
    "LifelineWS",
    "RandomWS",
    "SCHEDULERS",
    "Scheduler",
    "X10WS",
    "lifeline_graph",
    "make_scheduler",
]
