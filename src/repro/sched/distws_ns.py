"""DistWS-NS: the non-selective control (§VIII.3).

Identical machinery to DistWS — private deques per worker, one shared deque
per place, the same four-tier steal order, chunked distributed steals — but
the locality annotation is *ignored*: tasks are "mapped among the private
and shared deques in a round robin fashion, so that there are opportunities
for both local and remote execution of tasks".

The consequence the paper measures: locality-sensitive tasks travel across
nodes, paying fine-grained remote references and result copy-backs instead
of one bulk migration, which inflates L1 miss rates (Table II), message
counts (Table III), and makespan (Fig. 6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.runtime.task import Task
from repro.sched.base import FindWork, Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class DistWSNS(Scheduler):
    """Non-selective variant: any task may be stolen across places."""

    name = "DistWS-NS"
    remote_chunk_size = 2
    distributed = True
    #: Canonical tier shape (always-random victim order): the base
    #: collapsed-round commit replays the one permutation draw.
    _fast_round_ok = True
    #: By design: any task — sensitive included — may travel.
    enforces_locality = False

    def __init__(self, **knobs) -> None:
        super().__init__(**knobs)
        self._rr: Dict[int, int] = {}

    def map_task(self, task: Task, from_worker=None) -> None:
        place = self.rt.places[task.home_place]
        turn = self._rr.get(place.place_id, 0)
        self._rr[place.place_id] = turn + 1
        if turn % 2 == 0:
            self._push_private(task, from_worker)
        else:
            self._push_shared(task)

    def mapping_cost(self, task: Task) -> float:
        rt = self._bound_runtime()
        costs = rt.costs
        turn = self._rr.get(rt.places[task.home_place].place_id, 0)
        # Alternate the same way map_task will: even turns go private.
        return (costs.private_deque_op if turn % 2 == 0
                else costs.shared_deque_op)

    def find_work_tail(self, worker: "Worker") -> FindWork:
        task = yield from self._steal_local_shared(worker)
        if task is not None:
            return task
        if self.rt.spec.n_places > 1:
            task = yield from self._steal_remote(
                worker, self._random_place_order(worker))
        return task
