"""AdaptiveDistWS: locality classification without annotations.

The paper (§II) notes the locality-flexibility attributes — "critical
path, remote data-access overheads, and task granularities" — "can be
derived a priori through static analyses, or can be computed on the fly",
and leaves the runtime-derived variant unexplored.  This scheduler
implements that extension: it ignores the programmer's annotation and
classifies each task at spawn time from the properties the runtime can
see,

- **granularity** — the task's declared work must be large enough to
  amortise a distributed steal (§II condition c);
- **transfer economy** — the data the task would drag along must be
  small relative to its compute (conditions a/d: bytes-per-cycle bound);
- **result affinity** — tasks with declared ``copy_back`` results are
  pinned (their output must return home anyway).

Tasks classified flexible are shipped *with* their data (the runtime
decides to encapsulate, exactly what an X10 ``at`` does with captured
state); everything else is treated as sensitive.

The ablation benchmark compares it against annotated DistWS: the paper's
premise predicts the programmer's knowledge wins (the classifier cannot
see algorithmic intent, e.g. "this cell's children will all run here"),
but the adaptive variant should recover much of the gain over X10WS with
zero annotations.
"""

from __future__ import annotations

from repro.runtime.task import Task
from repro.sched.distws import DistWS


class AdaptiveDistWS(DistWS):
    """DistWS with runtime-derived (annotation-free) task classification."""

    name = "AdaptiveDistWS"
    #: The classifier deliberately overrides annotations, so the
    #: annotation-based locality guarantee does not apply.
    enforces_locality = False

    def __init__(self, min_work: float = 400_000.0,
                 max_bytes_per_kcycle: float = 600.0,
                 remote_chunk_size: int = 2, **knobs) -> None:
        super().__init__(remote_chunk_size=remote_chunk_size, **knobs)
        #: Minimum declared work (cycles) to consider a task stealable.
        self.min_work = min_work
        #: Transfer-economy bound: footprint bytes per 1000 work cycles.
        self.max_bytes_per_kcycle = max_bytes_per_kcycle
        #: Classification counters (for the ablation report).
        self.classified_flexible = 0
        self.classified_sensitive = 0

    def classify_flexible(self, task: Task) -> bool:
        """Would this task amortise a distributed steal?"""
        if task.work < self.min_work:
            return False
        if task.copy_back:
            return False
        footprint = task.footprint_bytes + task.closure_bytes
        if footprint > self.max_bytes_per_kcycle * task.work / 1000.0:
            return False
        return True

    def map_task(self, task: Task, from_worker=None) -> None:
        place = self.rt.places[task.home_place]
        if not self.classify_flexible(task):
            self.classified_sensitive += 1
            self._push_private(task, from_worker)
            return
        self.classified_flexible += 1
        # The runtime decided this task travels well: ship its data with
        # the closure if it is ever stolen.
        task.encapsulates = True
        if self._keep_local(place):
            place.pick_private_deque().push(task)
        else:
            self._push_shared(task)

    def mapping_cost(self, task: Task) -> float:
        rt = self._bound_runtime()
        costs = rt.costs
        base = costs.locality_mapping_overhead
        if not self.classify_flexible(task):
            return base + costs.private_deque_op
        place = rt.places[task.home_place]
        if self._keep_local(place):
            return base + costs.private_deque_op
        return base + costs.shared_deque_op
