"""RandomWS: pure randomized distributed work stealing.

The comparator the paper uses for UTS (§X): the lifeline scheduler with
lifelines disabled, i.e. an idle worker makes ``w`` independent uniformly
random remote steal attempts (single task each, no organized victim
traversal, no chunking) and gives up for the round if all fail.  "In
randomized work-stealing, a missed steal does not help future steals."

Mapping honours the locality annotation exactly like DistWS so that the
UTS comparison isolates the *steal strategy*, not the task-selection rule
(every UTS task is flexible anyway).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.task import Task
from repro.sched.base import FindWork, Scheduler
from repro.sched.distws import DistWS

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker


class RandomWS(DistWS):
    """DistWS mapping + unorganized random single-task remote steals."""

    name = "RandomWS"
    remote_chunk_size = 1
    distributed = True
    #: Blind random victim selection — the point of the §X comparison.
    #: As with Lifeline, this confines the inherited collapsed-round fast
    #: path to single-place runs: a blind failed round draws victims and
    #: pays round trips no matter what the board says.
    uses_status_board = False

    def __init__(self, attempts_per_round: int = 2, **knobs) -> None:
        super().__init__(remote_chunk_size=1, **knobs)
        #: Random victims tried per failed round (lifeline papers use w=2).
        self.attempts_per_round = attempts_per_round

    def find_work_tail(self, worker: "Worker") -> FindWork:
        task = yield from self._steal_local_shared(worker)
        if task is not None:
            return task
        if self.rt.spec.n_places > 1:
            rng = self.rt.rngs.stream("random-victims", *worker.wid)
            others = [p for p in range(self.rt.spec.n_places)
                      if p != worker.place.place_id]
            victims = [others[int(rng.integers(len(others)))]
                       for _ in range(self.attempts_per_round)]
            task = yield from self._steal_remote(worker, victims)
        return task
