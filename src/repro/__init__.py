"""repro — reproduction of Paudel, Tardieu & Amaral, ICPP 2013.

*On the Merits of Distributed Work-Stealing on Selective Locality-Aware
Tasks.*

The package provides:

- a deterministic discrete-event cluster simulator (:mod:`repro.sim`,
  :mod:`repro.cluster`);
- an X10-style APGAS tasking runtime over it (:mod:`repro.runtime`,
  :mod:`repro.apgas`);
- the paper's **DistWS** scheduler and its comparators
  (:mod:`repro.sched`);
- the full evaluation application suite (:mod:`repro.apps`);
- a harness regenerating every table and figure (:mod:`repro.harness`).

Quickstart::

    from repro import DistWS, SimRuntime, paper_cluster
    from repro.apps import QuicksortApp

    app = QuicksortApp(n=50_000)
    stats = app.run(SimRuntime(paper_cluster(), DistWS(), seed=1))
    print(stats.summary())
"""

from repro.apgas import Apgas, DistArray, PlaceLocalHandle, any_place_task
from repro.cluster import (
    DEFAULT_COST_MODEL,
    ClusterSpec,
    CostModel,
    paper_cluster,
    worker_sweep,
)
from repro.errors import (
    AppError,
    ConfigError,
    DeadlockError,
    FaultError,
    PlaceFailedError,
    PlacementError,
    ReproError,
    SchedulerError,
    SimulationError,
)
from repro.faults import FaultInjector, FaultPlan, FaultStats, SensitivePolicy
from repro.runtime import FLEXIBLE, SENSITIVE, RunStats, SimRuntime, Task
from repro.sched import (
    SCHEDULERS,
    DistWS,
    DistWSNS,
    LifelineWS,
    RandomWS,
    X10WS,
    make_scheduler,
)

__version__ = "1.0.0"

__all__ = [
    "Apgas",
    "AppError",
    "ClusterSpec",
    "ConfigError",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DeadlockError",
    "DistArray",
    "DistWS",
    "DistWSNS",
    "FLEXIBLE",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LifelineWS",
    "PlaceFailedError",
    "PlaceLocalHandle",
    "PlacementError",
    "RandomWS",
    "ReproError",
    "RunStats",
    "SCHEDULERS",
    "SENSITIVE",
    "SchedulerError",
    "SensitivePolicy",
    "SimRuntime",
    "SimulationError",
    "Task",
    "X10WS",
    "any_place_task",
    "make_scheduler",
    "paper_cluster",
    "worker_sweep",
    "__version__",
]
