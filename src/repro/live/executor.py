"""A real (threaded) executor with DistWS's dual-deque structure.

This is a demonstration that the paper's scheduling structure — private
per-worker deques for locality-sensitive tasks, one shared deque per
place for ``@AnyPlaceTask`` work, and the local-first steal order — runs
real Python callables, not only simulated ones.

It is **not** a performance vehicle: CPython's GIL serialises Python
bytecode, which is exactly why the quantitative reproduction lives in the
deterministic simulator (see DESIGN.md).  Use it to sanity-check program
structure, or as a reference implementation of Algorithm 1's control
flow over ordinary threads.

"Places" are thread groups in one process; stealing across places models
the paper's cross-node steal without a network.
"""

from __future__ import annotations

import collections
import random
import threading
from concurrent.futures import Future
from typing import Any, Callable, List, Optional

from repro.errors import ConfigError, SchedulerError


class _LiveTask:
    __slots__ = ("fn", "args", "kwargs", "future", "home_place",
                 "flexible", "exec_place")

    def __init__(self, fn, args, kwargs, home_place, flexible):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future: Future = Future()
        self.home_place = home_place
        self.flexible = flexible
        self.exec_place: Optional[int] = None


class LiveExecutor:
    """Thread-based dual-deque work-stealing executor."""

    def __init__(self, n_places: int = 2, workers_per_place: int = 2,
                 selective: bool = True, seed: int = 0) -> None:
        if n_places < 1 or workers_per_place < 1:
            raise ConfigError("need at least one place and worker")
        self.n_places = n_places
        self.workers_per_place = workers_per_place
        #: DistWS semantics when True: only flexible tasks cross places.
        self.selective = selective
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._private: List[List[collections.deque]] = [
            [collections.deque() for _ in range(workers_per_place)]
            for _ in range(n_places)]
        self._shared: List[collections.deque] = [
            collections.deque() for _ in range(n_places)]
        self._pending = 0
        self._shutdown = False
        self._rng = random.Random(seed)
        self.stats = collections.Counter()
        self._threads: List[threading.Thread] = []
        for p in range(n_places):
            for w in range(workers_per_place):
                t = threading.Thread(target=self._worker_loop,
                                     args=(p, w), daemon=True,
                                     name=f"live-p{p}w{w}")
                t.start()
                self._threads.append(t)

    # -- submission ----------------------------------------------------------
    def submit(self, fn: Callable, *args, place: int = 0,
               flexible: bool = False, **kwargs) -> Future:
        """Submit ``fn(*args, **kwargs)`` homed at ``place``."""
        if not (0 <= place < self.n_places):
            raise ConfigError(f"no such place: {place}")
        task = _LiveTask(fn, args, kwargs, place, flexible)
        with self._lock:
            # Checked under the lock: a shutdown() racing with submit()
            # must either see this task (and drain it) or reject it —
            # never strand it on a deque no worker will visit again.
            if self._shutdown:
                raise SchedulerError("executor is shut down")
            self._pending += 1
            if flexible:
                self._shared[place].append(task)
            else:
                # Round-robin onto the home place's private deques.
                deques = self._private[place]
                target = min(range(len(deques)),
                             key=lambda i: len(deques[i]))
                deques[target].append(task)
            self._work_available.notify_all()
        return task.future

    def map_local(self, fn: Callable, items, place: int = 0,
                  flexible: bool = True) -> list:
        """Submit one task per item and gather results in order."""
        futures = [self.submit(fn, item, place=place, flexible=flexible)
                   for item in items]
        return [f.result() for f in futures]

    # -- lifecycle ------------------------------------------------------------
    def join(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted task has completed."""
        with self._lock:
            if not self._idle.wait_for(lambda: self._pending == 0,
                                       timeout=timeout):
                raise TimeoutError("live executor join timed out")

    def shutdown(self) -> None:
        """Stop all workers (pending tasks are finished first)."""
        self.join()
        with self._lock:
            self._shutdown = True
            self._work_available.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "LiveExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- worker ------------------------------------------------------------
    def _take_work(self, p: int, w: int) -> Optional[_LiveTask]:
        """Algorithm 1's steal order, under the executor lock."""
        mine = self._private[p][w]
        if mine:
            self.stats["own_pops"] += 1
            return mine.pop()  # LIFO for the owner
        # Steal from co-located workers (oldest end).
        order = list(range(self.workers_per_place))
        self._rng.shuffle(order)
        for v in order:
            if v != w and self._private[p][v]:
                self.stats["local_steals"] += 1
                return self._private[p][v].popleft()
        # Local shared deque (FIFO).
        if self._shared[p]:
            self.stats["shared_takes"] += 1
            return self._shared[p].popleft()
        # Remote shared deques.
        places = [q for q in range(self.n_places) if q != p]
        self._rng.shuffle(places)
        for q in places:
            if self._shared[q]:
                self.stats["remote_steals"] += 1
                return self._shared[q].popleft()
        if not self.selective:
            # Non-selective: raid remote private deques too.
            for q in places:
                for v in range(self.workers_per_place):
                    if self._private[q][v]:
                        self.stats["remote_steals"] += 1
                        return self._private[q][v].popleft()
        return None

    def _worker_loop(self, p: int, w: int) -> None:
        while True:
            with self._lock:
                task = self._take_work(p, w)
                while task is None and not self._shutdown:
                    self._work_available.wait(timeout=0.05)
                    task = self._take_work(p, w)
                if task is None and self._shutdown:
                    return
            assert task is not None
            if self.selective and not task.flexible \
                    and task.home_place != p:  # pragma: no cover
                raise SchedulerError(
                    "sensitive task leaked across places")
            if not task.future.set_running_or_notify_cancel():
                # Cancelled while queued: skip execution.  Without this
                # guard a set_result on the cancelled future raises
                # InvalidStateError and silently kills the worker.
                self.stats["cancelled"] += 1
                self._task_done()
                continue
            task.exec_place = p
            try:
                result = task.fn(*task.args, **task.kwargs)
            except BaseException as exc:  # propagate to the future
                task.future.set_exception(exc)
            else:
                task.future.set_result(result)
            self._task_done()

    def _task_done(self) -> None:
        with self._lock:
            self._pending -= 1
            if self._pending == 0:
                self._idle.notify_all()
