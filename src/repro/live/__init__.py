"""Thread-based live executor with the DistWS deque structure (API demo)."""

from repro.live.executor import LiveExecutor

__all__ = ["LiveExecutor"]
