#!/usr/bin/env python
"""Kill-recovery smoke for the experiment store (CI store-smoke job).

Exercises the crash-resilience contract of ``repro.harness.db`` end to
end, the way an unlucky multi-worker sweep would:

1. run a reduced grid **serially** for the reference snapshot;
2. enqueue the same grid into a SQLite store and start ``--workers``
   worker processes draining it;
3. **SIGKILL one worker mid-drain** (once at least one cell is done and
   at least one is leased), let the survivors finish, then *restart* a
   worker to prove a dead sweep resumes;
4. fail on any lost cell, any duplicated work (a cell simulated twice —
   attempts > 1 beyond the killed cell), any quarantined cell, or any
   snapshot byte that differs from serial.

Exit 1 on any violation.

Usage:
    PYTHONPATH=src python tools/store_smoke.py --workers 2
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import signal
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.cluster.topology import ClusterSpec  # noqa: E402
from repro.harness.db import ExperimentStore, run_worker  # noqa: E402
from repro.harness.parallel import ExecutionContext, RunSpec  # noqa: E402


def build_specs(args):
    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers_per_place,
                       max_threads=args.workers_per_place + 4)
    return [RunSpec.build(app, sched, spec, sched_seed=s,
                          scale=args.scale)
            for app in args.apps.split(",")
            for sched in args.schedulers.split(",")
            for s in range(1, args.seeds + 1)]


def snapshot_bytes(results) -> bytes:
    return json.dumps([json.dumps(r.stats.snapshot(), sort_keys=True)
                       for r in results]).encode()


def spawn_worker(path: str, heartbeat: float) -> mp.Process:
    proc = mp.Process(target=run_worker, args=(path,),
                      kwargs=dict(heartbeat_seconds=heartbeat,
                                  lease_seconds=heartbeat * 5,
                                  poll_seconds=0.05))
    proc.start()
    return proc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="uts,quicksort")
    parser.add_argument("--schedulers", default="DistWS,RandomWS")
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--scale", default="test",
                        choices=("bench", "test"))
    parser.add_argument("--places", type=int, default=4)
    parser.add_argument("--workers-per-place", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2,
                        help="store worker processes to spawn")
    parser.add_argument("--heartbeat", type=float, default=0.2,
                        help="worker heartbeat interval (seconds)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall drain deadline (seconds)")
    args = parser.parse_args(argv)

    specs = build_specs(args)
    print(f"grid: {len(specs)} cells ({args.apps} x {args.schedulers} "
          f"x {args.seeds} seeds)")

    t0 = time.perf_counter()
    serial = ExecutionContext().run_specs(specs)
    serial_snap = snapshot_bytes(serial)
    print(f"serial      : {time.perf_counter() - t0:6.2f}s")

    with tempfile.TemporaryDirectory(prefix="repro-store-") as tmp:
        path = os.path.join(tmp, "grid.sqlite")
        store = ExperimentStore(path)
        added = store.add_specs(specs)
        assert added == len(specs)

        workers = [spawn_worker(path, args.heartbeat)
                   for _ in range(args.workers)]
        print(f"workers     : {args.workers} draining {path}")

        # Wait for real progress, then murder one worker mid-cell.
        deadline = time.time() + args.timeout
        victim = workers[0]
        while time.time() < deadline:
            counts = store.counts()
            if counts["done"] >= 1 and counts["leased"] >= 1:
                break
            if counts["done"] == len(specs):
                break  # grid too fast to kill anyone mid-cell
            time.sleep(0.02)
        killed_mid_drain = store.counts()["done"] < len(specs)
        if killed_mid_drain:
            os.kill(victim.pid, signal.SIGKILL)
            print(f"kill -9     : worker pid {victim.pid} "
                  f"({store.counts()['done']}/{len(specs)} done)")
        victim.join()

        # Survivors drain on; a restarted worker proves resumability
        # even if every original worker is gone.
        for proc in workers[1:]:
            proc.join(timeout=args.timeout)
        restarted = spawn_worker(path, args.heartbeat)
        restarted.join(timeout=args.timeout)
        if restarted.is_alive():
            restarted.terminate()
            print("\nFAIL: restarted worker hung past the deadline",
                  file=sys.stderr)
            return 1

        counts = store.counts()
        print(f"final       : {counts}")
        failures = []
        if counts["done"] != len(specs):
            failures.append(
                f"lost cells: {len(specs) - counts['done']} of "
                f"{len(specs)} not done ({counts})")
        rows = {r.key: r for r in store.rows()}
        extra = [k[:12] for k, r in sorted(rows.items())
                 if r.attempts > 1]
        if killed_mid_drain and len(extra) > 1:
            failures.append(
                f"duplicated work: {len(extra)} cells took >1 attempt, "
                f"only the killed cell may ({extra})")
        if not killed_mid_drain and extra:
            failures.append(
                f"duplicated work with no kill: {extra}")
        quarantined = [k[:12] for k, r in sorted(rows.items())
                       if r.status == "failed"]
        if quarantined:
            failures.append(f"quarantined cells: {quarantined}")

        recovered = [store.get_result(s.cache_key()) for s in specs]
        if any(r is None for r in recovered):
            failures.append("missing results for done rows")
        elif snapshot_bytes(recovered) != serial_snap:
            failures.append("snapshot drift: store grid is not "
                            "byte-identical to serial")
        store.close()

        if failures:
            for failure in failures:
                print(f"\nFAIL: {failure}", file=sys.stderr)
            return 1

    print("\nOK: SIGKILL mid-drain lost zero cells, duplicated zero "
          "results, and the recovered grid is byte-identical to serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
