#!/usr/bin/env python
"""Differential smoke for the parallel harness (CI parallel-smoke job).

Runs a reduced (app x scheduler x seed) grid three ways and checks the
determinism contract of ``repro.harness.parallel`` end to end:

1. **serial** — the default single-process execution context;
2. **parallel** — the same grid sharded over ``--parallel`` worker
   processes; the ``RunStats.snapshot()`` JSON must be *byte-identical*
   to serial, and the wall-clock speedup must reach ``--min-speedup``;
3. **cached** — the grid twice through an on-disk result cache; the
   warm pass must run **zero** simulations and reproduce the same bytes.

Exit 1 on any divergence, missed speedup, or warm-cache simulation.

Usage:
    PYTHONPATH=src python tools/parallel_smoke.py \
        --parallel 4 --min-speedup 2.0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.cluster.topology import ClusterSpec  # noqa: E402
from repro.harness.parallel import (  # noqa: E402
    CellRequest,
    ExecutionContext,
    ResultCache,
)


def build_grid(args):
    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    seeds = tuple(range(1, args.seeds + 1))
    return [CellRequest.build(app, sched, spec, sched_seeds=seeds,
                              scale=args.scale)
            for app in args.apps.split(",")
            for sched in args.schedulers.split(",")]


def snapshot_bytes(cells) -> bytes:
    """Canonical byte string over every run's simulated statistics."""
    return json.dumps(
        [[json.dumps(r.stats.snapshot(), sort_keys=True) for r in c.runs]
         for c in cells]).encode()


def timed(ctx: ExecutionContext, requests):
    t0 = time.perf_counter()
    cells = ctx.run_cells(requests)
    return time.perf_counter() - t0, snapshot_bytes(cells)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="uts,quicksort,dmg",
                        help="comma-separated application list")
    parser.add_argument("--schedulers", default="DistWS,X10WS,RandomWS")
    parser.add_argument("--seeds", type=int, default=3,
                        help="scheduler seeds per cell")
    parser.add_argument("--scale", default="test",
                        choices=("bench", "test"))
    parser.add_argument("--places", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--parallel", type=int, default=4,
                        help="worker processes for the sharded pass")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required serial/parallel wall-clock ratio "
                             "(0 disables the check)")
    args = parser.parse_args(argv)

    requests = build_grid(args)
    n_runs = sum(len(r.sched_seeds) for r in requests)
    print(f"grid: {len(requests)} cells / {n_runs} runs "
          f"({args.apps} x {args.schedulers} x {args.seeds} seeds)")

    serial_t, serial_snap = timed(ExecutionContext(), requests)
    print(f"serial      : {serial_t:6.2f}s")

    par_t, par_snap = timed(ExecutionContext(parallel=args.parallel),
                            requests)
    speedup = serial_t / par_t if par_t > 0 else float("inf")
    print(f"parallel {args.parallel:2d} : {par_t:6.2f}s  "
          f"(speedup {speedup:.2f}x, bound {args.min_speedup:.2f}x)")

    if par_snap != serial_snap:
        print("\nFAIL: parallel snapshots diverged from serial — the "
              "determinism contract is broken", file=sys.stderr)
        return 1
    if args.min_speedup and speedup < args.min_speedup:
        print(f"\nFAIL: speedup {speedup:.2f}x below the "
              f"{args.min_speedup:.2f}x bound", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        cold = ExecutionContext(parallel=args.parallel,
                                cache=ResultCache(cache_dir))
        cold_t, cold_snap = timed(cold, requests)
        warm = ExecutionContext(cache=ResultCache(cache_dir))
        warm_t, warm_snap = timed(warm, requests)
        print(f"cold cache  : {cold_t:6.2f}s  ({cold.cache.stores} stored)")
        print(f"warm cache  : {warm_t:6.2f}s  ({warm.cache.hits} hits, "
              f"{warm.simulations} simulations)")
        if warm.simulations != 0:
            print(f"\nFAIL: warm cache ran {warm.simulations} simulations "
                  "(expected 0)", file=sys.stderr)
            return 1
        if cold_snap != serial_snap or warm_snap != serial_snap:
            print("\nFAIL: cached snapshots diverged from serial",
                  file=sys.stderr)
            return 1

    print("\nOK: parallel and cached grids byte-identical to serial, "
          "warm cache simulated nothing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
