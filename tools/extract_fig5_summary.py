#!/usr/bin/env python
"""Summarise a Fig. 5 rendering from bench_output.txt into per-app gains.

Reads the `Fig. 5 — <app>: speedup vs workers` blocks that
`benchmarks/test_fig5_speedup_scaling.py -s` prints and emits a compact
per-app table: speedups at 8/32/128 workers for both schedulers and the
DistWS gain at 128 workers — the summary EXPERIMENTS.md quotes.

Usage: python tools/extract_fig5_summary.py [bench_output.txt]
"""

from __future__ import annotations

import re
import sys


def parse_blocks(text: str):
    blocks = {}
    pattern = re.compile(
        r"Fig\. 5 — (\w+): speedup vs workers\n=+\n"
        r"\s*x\s+X10WS\s+DistWS\n((?:\s*\d+\s+[\d.]+\s+[\d.]+\n?)+)")
    for m in pattern.finditer(text):
        app = m.group(1)
        rows = {}
        for line in m.group(2).strip().splitlines():
            w, x10, dw = line.split()
            rows[int(w)] = (float(x10), float(dw))
        blocks[app] = rows
    return blocks


def main(path: str = "bench_output.txt") -> None:
    text = open(path).read()
    blocks = parse_blocks(text)
    if not blocks:
        raise SystemExit("no Fig. 5 blocks found; run the fig5 "
                         "benchmark with -s first")
    print(f"{'app':>10s} {'x10@8':>7s} {'dw@8':>7s} {'x10@32':>7s} "
          f"{'dw@32':>7s} {'x10@128':>8s} {'dw@128':>8s} {'gain@128':>9s}")
    for app, rows in blocks.items():
        x8, d8 = rows.get(8, (0, 0))
        x32, d32 = rows.get(32, (0, 0))
        x128, d128 = rows.get(128, (0, 0))
        gain = 100 * (d128 / x128 - 1) if x128 else 0.0
        print(f"{app:>10s} {x8:7.1f} {d8:7.1f} {x32:7.1f} {d32:7.1f} "
              f"{x128:8.1f} {d128:8.1f} {gain:+8.1f}%")


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["bench_output.txt"]))
