#!/usr/bin/env python
"""Dual-kernel differential: flat vs object kernel on the quick grid.

Runs every quick-grid cell twice — once per kernel, each in a fresh
subprocess so the ``REPRO_KERNEL`` import-time switch takes effect — and
byte-compares the deterministic outputs: simulated observables
(makespan, tasks executed, steal counts) and ``events_processed``.  Any
divergence is a kernel correctness bug by definition: the flat kernel's
contract is that batched same-cycle dispatch, handle recycling, and the
kernel-resident steal scan change *nothing* observable.

Usage:
    python tools/kernel_diff.py            # quick grid
    python tools/kernel_diff.py --full     # full benchmark grid (slow)

Exits non-zero on the first mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness import bench  # noqa: E402

_SNIPPET = """\
import json, sys
from repro.harness import bench
cell = json.loads(sys.argv[1])
row = bench.run_cell(cell, repeats=1)
print(json.dumps({"cell": row["cell"],
                  "simulated": row["simulated"],
                  "events_processed": row.get("events_processed")},
                 sort_keys=True))
"""


def run_cell_under(cell: dict, kernel: str) -> str:
    env = dict(os.environ)
    env["REPRO_KERNEL"] = kernel
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    out = subprocess.run(
        [sys.executable, "-c", _SNIPPET, json.dumps(cell)],
        env=env, capture_output=True, text=True, timeout=1800)
    if out.returncode != 0:
        raise SystemExit(
            f"cell {bench.cell_key(cell)} crashed under "
            f"REPRO_KERNEL={kernel}:\n{out.stderr}")
    return out.stdout.strip()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="diff the full benchmark grid, not just the "
                             "quick cells")
    args = parser.parse_args(argv)

    cells = (bench.DEFAULT_GRID + bench.QUICK_GRID) if args.full \
        else bench.QUICK_GRID
    failures = 0
    for cell in cells:
        key = bench.cell_key(cell)
        flat = run_cell_under(cell, "flat")
        legacy = run_cell_under(cell, "object")
        if flat == legacy:
            events = json.loads(flat)["events_processed"]
            print(f"  OK   {key}: {events} events, identical")
        else:
            failures += 1
            print(f"  FAIL {key}:\n    flat:   {flat}\n    object: {legacy}")
    if failures:
        print(f"\n{failures} cell(s) diverged between kernels")
        return 1
    print(f"\nall {len(cells)} cells byte-identical across kernels")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
