#!/usr/bin/env python
"""Fleet-observability smoke for the experiment store (CI fleet-smoke job).

Exercises the telemetry-shipping contract of ``repro.obs.fleet`` the way
a real multi-worker sweep would:

1. run a reduced grid **serially** for the reference snapshot;
2. enqueue the same grid and drain it with ``--workers`` queue worker
   processes, telemetry shipping on and one Chrome trace shard per cell;
3. assert: one telemetry row per done cell, rollup histogram counts
   equal the sum of per-run counts, the merged Perfetto trace is valid
   JSON with one process row per worker that completed cells, the
   stored results are byte-identical to serial, and a second store
   drained with shipping disabled stays telemetry-free and byte-identical
   too;
4. render one ``repro top`` frame and the HTML sweep report to prove
   the read-side works against a freshly drained store.

Exit 1 on any violation.

Usage:
    PYTHONPATH=src python tools/fleet_smoke.py --workers 2
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.cluster.topology import ClusterSpec  # noqa: E402
from repro.harness.db import ExperimentStore, run_worker  # noqa: E402
from repro.harness.parallel import ExecutionContext, RunSpec  # noqa: E402
from repro.obs.fleet import (  # noqa: E402
    FleetTelemetry,
    FleetView,
    merge_chrome_traces,
    render_top,
    rollup_histograms,
    store_trace_shards,
)


def build_specs(args):
    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers_per_place,
                       max_threads=args.workers_per_place + 4)
    return [RunSpec.build(app, sched, spec, sched_seed=s,
                          scale=args.scale)
            for app in args.apps.split(",")
            for sched in args.schedulers.split(",")
            for s in range(1, args.seeds + 1)]


def snapshot_bytes(results) -> bytes:
    return json.dumps([json.dumps(r.stats.snapshot(), sort_keys=True)
                       for r in results]).encode()


def spawn_worker(path: str, heartbeat: float,
                 fleet: FleetTelemetry) -> mp.Process:
    proc = mp.Process(target=run_worker, args=(path,),
                      kwargs=dict(heartbeat_seconds=heartbeat,
                                  lease_seconds=heartbeat * 5,
                                  poll_seconds=0.05, fleet=fleet))
    proc.start()
    return proc


def drain_with_workers(path, n_workers, heartbeat, fleet, timeout):
    workers = [spawn_worker(path, heartbeat, fleet)
               for _ in range(n_workers)]
    ok = True
    for proc in workers:
        proc.join(timeout=timeout)
        if proc.is_alive():
            proc.terminate()
            ok = False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="uts,quicksort")
    parser.add_argument("--schedulers", default="DistWS,RandomWS")
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--scale", default="test",
                        choices=("bench", "test"))
    parser.add_argument("--places", type=int, default=4)
    parser.add_argument("--workers-per-place", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2,
                        help="queue worker processes to spawn")
    parser.add_argument("--heartbeat", type=float, default=0.2)
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-worker drain deadline (seconds)")
    args = parser.parse_args(argv)

    specs = build_specs(args)
    print(f"grid: {len(specs)} cells ({args.apps} x {args.schedulers} "
          f"x {args.seeds} seeds)")

    t0 = time.perf_counter()
    serial = ExecutionContext().run_specs(specs)
    serial_snap = snapshot_bytes(serial)
    print(f"serial      : {time.perf_counter() - t0:6.2f}s")

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
        # -- shipping on: telemetry + trace shards -----------------------
        path = os.path.join(tmp, "grid.sqlite")
        trace_dir = os.path.join(tmp, "traces")
        fleet = FleetTelemetry(trace_dir=trace_dir)
        store = ExperimentStore(path)
        assert store.add_specs(specs) == len(specs)
        t0 = time.perf_counter()
        if not drain_with_workers(path, args.workers, args.heartbeat,
                                  fleet, args.timeout):
            failures.append("a queue worker hung past the deadline")
        print(f"fleet drain : {time.perf_counter() - t0:6.2f}s "
              f"({args.workers} workers, shipping on)")

        counts = store.counts()
        tel = store.telemetry_rows()
        print(f"final       : {counts}, {len(tel)} telemetry row(s)")
        if counts["done"] != len(specs):
            failures.append(f"lost cells: {counts}")
        if len(tel) != counts["done"]:
            failures.append(
                f"telemetry rows ({len(tel)}) != done rows "
                f"({counts['done']}) — shipping is not exactly-once")

        # Rollup counts must equal the sum of per-run counts.
        rollup = rollup_histograms(r.data for r in tel)
        for name, hist in sorted(rollup.items()):
            per_run = sum(
                r.data["obs"]["metrics"]["histograms"][name]["count"]
                for r in tel)
            if hist.count != per_run:
                failures.append(
                    f"rollup {name}: count {hist.count} != per-run sum "
                    f"{per_run}")
        print(f"rollup      : {len(rollup)} histograms, counts match "
              "per-run sums")

        # Merged trace: valid JSON, one process row per shipping owner.
        shards = store_trace_shards(store)
        merged_path = os.path.join(tmp, "merged.trace.json")
        merge_chrome_traces(shards, out_path=merged_path)
        with open(merged_path) as fh:
            doc = json.load(fh)
        owners = {r.owner for r in tel}
        process_rows = [e for e in doc["traceEvents"]
                        if e.get("name") == "process_name"]
        if len(process_rows) != len(owners):
            failures.append(
                f"merged trace has {len(process_rows)} process rows, "
                f"expected one per worker ({len(owners)})")
        print(f"merged trace: {len(doc['traceEvents'])} events, "
              f"{len(process_rows)} process row(s) for "
              f"{len(owners)} worker(s)")

        # Stored results still byte-identical to serial despite shipping.
        recovered = [store.get_result(s.cache_key()) for s in specs]
        if snapshot_bytes(recovered) != serial_snap:
            failures.append("snapshot drift: observed store grid is not "
                            "byte-identical to serial")

        # Read-side: one repro-top frame + the report build.
        with FleetView(path) as view:
            frame = render_top(view.snapshot())
        if f"{len(specs)}/{len(specs)} done" not in frame:
            failures.append("repro top frame does not reflect the "
                            "drained store")
        from repro.analysis.fleet_report import write_report
        written = write_report(store, os.path.join(tmp, "report"))
        if not any(p.endswith("report.html") for p in written):
            failures.append("sweep report did not produce report.html")
        store.close()

        # -- shipping off: bare drain stays pre-fleet --------------------
        bare_path = os.path.join(tmp, "bare.sqlite")
        bare = ExperimentStore(bare_path)
        bare.add_specs(specs)
        off = FleetTelemetry(enabled=False)
        t0 = time.perf_counter()
        if not drain_with_workers(bare_path, args.workers,
                                  args.heartbeat, off, args.timeout):
            failures.append("a bare queue worker hung past the deadline")
        print(f"bare drain  : {time.perf_counter() - t0:6.2f}s "
              f"(shipping off)")
        if bare.telemetry_rows():
            failures.append("disabled shipping still wrote telemetry")
        bare_results = [bare.get_result(s.cache_key()) for s in specs]
        if snapshot_bytes(bare_results) != serial_snap:
            failures.append("bare drain snapshots differ from serial")
        bare.close()

    if failures:
        for failure in failures:
            print(f"\nFAIL: {failure}", file=sys.stderr)
        return 1
    print("\nOK: telemetry is exactly-once per done cell, rollups are "
          "count-exact, the merged trace is a valid per-worker Perfetto "
          "file, and disabling shipping leaves runs byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
