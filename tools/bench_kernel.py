#!/usr/bin/env python
"""Kernel benchmark CLI: run the grid, write/compare ``BENCH_kernel.json``.

Usage:
    PYTHONPATH=src python tools/bench_kernel.py                 # full grid
    PYTHONPATH=src python tools/bench_kernel.py --quick \\
        --baseline BENCH_kernel.json --out /tmp/bench_fresh.json

Exits non-zero when ``--baseline`` is given and the run regresses more
than ``--max-regression`` percent (calibration-normalized) or any
simulated observable drifts.  See ``repro.harness.bench`` for details.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness import bench  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sub-second grid (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per cell "
                             "(default: 3 full, 2 quick)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here "
                             "(default: BENCH_kernel.json for the full "
                             "grid, stdout-only for --quick)")
    parser.add_argument("--baseline", default=None,
                        help="compare against this committed report and "
                             "gate on regression")
    parser.add_argument("--max-regression", type=float, default=20.0,
                        help="allowed normalized wall-clock regression "
                             "in percent (default 20)")
    args = parser.parse_args(argv)

    # The full run also covers the quick cells so the committed baseline
    # can gate CI's --quick smoke run.
    cells = bench.QUICK_GRID if args.quick \
        else bench.DEFAULT_GRID + bench.QUICK_GRID
    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else 3)
    report = bench.run_grid(cells, repeats=repeats)
    print(bench.render(report))

    out = args.out
    if out is None and not args.quick:
        out = os.path.join(os.path.dirname(__file__), "..",
                           "BENCH_kernel.json")
    if out:
        with open(out, "w") as fh:
            fh.write(bench.to_json(report))
        print(f"\nwrote {os.path.normpath(out)}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        ok, lines = bench.compare(baseline, report,
                                  max_regression_pct=args.max_regression)
        print("\nbaseline comparison:")
        print("\n".join(lines))
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
