#!/usr/bin/env python
"""End-to-end smoke for the tuning subsystem (CI tune-smoke job).

Runs a small grid search over one knob and checks the contracts the
``repro tune`` subsystem promises:

1. **sanity** — the paper-default configuration ranks in the top half
   of the searched grid (the defaults are supposed to be good; a
   default that loses to most of its own grid means either the search
   or the knob plumbing is broken);
2. **regret** — the default trial's regret is exactly zero and every
   other trial's regret is its median minus the default's;
3. **cache** — repeating the identical search against a warm result
   cache runs **zero** simulations;
4. **determinism** — the serialized report is byte-identical across
   the cold and warm runs.

Exit 1 on any violation.

Usage:
    PYTHONPATH=src python tools/tune_smoke.py --budget 8 --parallel 2
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.cluster.topology import ClusterSpec  # noqa: E402
from repro.harness.parallel import execution  # noqa: E402
from repro.tune import GridSearch, TuneCell, tune  # noqa: E402


def run_search(args, cache_dir):
    cell = TuneCell(
        app=args.app, scheduler=args.scheduler,
        spec=ClusterSpec(n_places=args.places,
                         workers_per_place=args.workers,
                         max_threads=args.workers + 4),
        scale=args.scale, sched_seeds=tuple(range(1, args.seeds + 1)))
    engine = GridSearch(budget=args.budget)
    with execution(parallel=args.parallel, cache_dir=cache_dir) as ctx:
        report = tune([cell], engine,
                      knob_names=["remote_chunk_size", "victim_order"])
    return report, ctx


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--app", default="uts")
    ap.add_argument("--scheduler", default="DistWS")
    ap.add_argument("--scale", default="test")
    ap.add_argument("--budget", type=int, default=8,
                    help="grid truncation (keep <= 8 for CI)")
    ap.add_argument("--places", type=int, default=2)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--seeds", type=int, default=1)
    ap.add_argument("--parallel", type=int, default=2)
    args = ap.parse_args(argv)

    failures = []
    with tempfile.TemporaryDirectory() as cache_dir:
        cold_report, cold_ctx = run_search(args, cache_dir)
        warm_report, warm_ctx = run_search(args, cache_dir)

    cell = cold_report.cells[0]
    print(cell.rendered(top=args.budget))
    ranked = cell.ranked()
    print(f"\ncold: {cold_ctx.simulations} simulations; "
          f"warm: {warm_ctx.simulations} simulations, "
          f"{warm_ctx.cache.hits} cache hits")

    # Tie-aware rank: grid points that spell out the default values tie
    # its median exactly, and the lexicographic tie-break lists them
    # first; only configs strictly faster than the default count.
    default = cell.default_trial
    rank = 1 + sum(t.median_makespan < default.median_makespan
                   for t in ranked)
    half = (len(ranked) + 1) // 2
    if rank > half:
        failures.append(
            f"default config ranked {rank}/{len(ranked)} "
            f"(ties collapsed), below the top half ({half})")

    if default.regret != 0.0:
        failures.append(f"default regret is {default.regret}, not 0")
    for t in cell.trials:
        want = t.median_makespan - default.median_makespan
        if t.regret != want:
            failures.append(
                f"trial {t.key()} regret {t.regret} != {want}")
            break

    if cold_ctx.simulations == 0:
        failures.append("cold search ran zero simulations "
                        "(cache unexpectedly warm)")
    if warm_ctx.simulations != 0:
        failures.append(
            f"warm-cache search ran {warm_ctx.simulations} simulations "
            "(expected zero)")

    if warm_report.to_json() != cold_report.to_json():
        failures.append("report bytes differ between cold and warm runs")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: default in top half, regret consistent, "
          "warm cache replayed with zero simulations, "
          "report bytes deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
