#!/usr/bin/env python
"""End-to-end smoke for the latency-theory pass (CI theory-smoke job).

Drives a tiny λ-grid through the store-backed execution path — the same
SQLite job queue ``repro reproduce --store`` uses — and checks the
contracts ``repro theory`` promises:

1. **verdict** — the sweep yields a machine-readable JSON verdict with
   one fit per scheduler, R² and residuals populated, and no
   measurement beating the structural W/p floor;
2. **monotone** — RandomWS mean makespan is non-decreasing in λ (up to
   a small tolerance): more steal latency can only slow the protocol
   the theory analyses;
3. **figure** — the bound-vs-measured figure is non-empty, well-formed
   XML and names every fitted scheduler;
4. **store** — every (scheduler × λ) cell drained through the
   experiment store exactly once, with nothing quarantined.

Exit 1 on any violation.

Usage:
    PYTHONPATH=src python tools/theory_smoke.py --seeds 3
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import xml.etree.ElementTree as ET

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis.theory import run_theory_sweep  # noqa: E402
from repro.cluster.topology import ClusterSpec  # noqa: E402
from repro.harness.parallel import execution  # noqa: E402

#: Tolerance for the monotonicity check: simulated makespans are seed
#: averages, so allow a hair of non-monotone jitter between λ points.
MONOTONE_SLACK = 0.02


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--app", default="uts")
    ap.add_argument("--schedulers", nargs="+",
                    default=["RandomWS", "StealHalfWS"])
    ap.add_argument("--places", type=int, default=4)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--seeds", type=int, default=3)
    ap.add_argument("--lambdas", type=float, nargs="+",
                    default=[1_000.0, 4_000.0, 16_000.0])
    args = ap.parse_args()

    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    failures = []

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "theory.sqlite3")
        with execution(store_path=store_path) as ctx:
            report = run_theory_sweep(
                apps=(args.app,), schedulers=tuple(args.schedulers),
                spec=spec, lambdas=tuple(args.lambdas),
                sched_seeds=tuple(range(1, args.seeds + 1)),
                scale="test")
        expected_rows = (len(args.schedulers) * len(args.lambdas)
                         * args.seeds)
        print(f"store drained: {ctx.simulations} simulations, "
              f"{expected_rows} rows expected")
        if ctx.simulations != expected_rows:
            failures.append(
                f"store ran {ctx.simulations} simulations, expected "
                f"{expected_rows}")

        from repro.harness.db import ExperimentStore
        store = ExperimentStore(store_path)
        try:
            counts = store.counts()
            if counts.get("failed", 0):
                failures.append(
                    f"{counts['failed']} cells failed/quarantined")
            if counts.get("done", 0) != expected_rows:
                failures.append(
                    f"store holds {counts.get('done', 0)} done rows, "
                    f"expected {expected_rows}")
        finally:
            store.close()

    # -- verdict ---------------------------------------------------------
    verdict = json.loads(report.to_json())
    fits = {f["scheduler"]: f for f in verdict["fits"]}
    if sorted(fits) != sorted(args.schedulers):
        failures.append(
            f"verdict fits {sorted(fits)} != schedulers "
            f"{sorted(args.schedulers)}")
    if not verdict["lower_bound_holds"]:
        failures.append(
            "structural floor W/p violated: "
            f"{verdict['lower_bound_violations']}")
    for name, f in fits.items():
        if len(f["residuals"]) != len(args.lambdas):
            failures.append(f"{name}: residuals missing")
        if not (0.0 <= f["r_squared"] <= 1.0 + 1e-9):
            failures.append(f"{name}: R² {f['r_squared']} out of range")
        print(f"  {name}: c={f['c']:.3f} R²={f['r_squared']:.3f} "
              f"bound_c={f['bound_c']:.3f}")

    # -- monotone makespan for RandomWS ----------------------------------
    if "RandomWS" in fits:
        ys = fits["RandomWS"]["measured_makespan_cycles"]
        for (l0, y0), (l1, y1) in zip(zip(args.lambdas, ys),
                                      zip(args.lambdas[1:], ys[1:])):
            if y1 < y0 * (1.0 - MONOTONE_SLACK):
                failures.append(
                    f"RandomWS makespan fell from {y0:.0f} (λ={l0}) to "
                    f"{y1:.0f} (λ={l1}); theory says latency only hurts")
    else:
        failures.append("RandomWS missing — the monotone check needs "
                        "the protocol the theory analyses")

    # -- figure ----------------------------------------------------------
    svg = report.figure(args.app)
    try:
        root = ET.fromstring(svg)
        if not root.tag.endswith("svg"):
            failures.append(f"figure root tag {root.tag!r} is not svg")
        text = "".join(root.itertext())
        for name in args.schedulers:
            if f"{name} measured" not in text:
                failures.append(f"figure missing series for {name}")
        if "W/p floor" not in text:
            failures.append("figure missing the W/p floor series")
    except ET.ParseError as exc:
        failures.append(f"figure is not well-formed XML: {exc}")
    if len(svg) < 500:
        failures.append(f"figure suspiciously small ({len(svg)} bytes)")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nOK: verdict machine-readable, floor respected, RandomWS "
          "monotone in lambda, figure valid, store drained exactly once")
    return 0


if __name__ == "__main__":
    sys.exit(main())
