#!/usr/bin/env python
"""End-to-end smoke for the live serving tier (CI serve-smoke job).

Runs a short Poisson trace against a real 2-place × 2-worker service
(one OS process per place, loopback sockets), SIGKILLs one place
mid-trace, and checks the contracts ``repro serve`` promises:

1. **no losses** — every offered request reaches exactly one terminal
   outcome; no accepted request is shed after the fact or left pending
   (the exactly-once completion ledger survives the crash);
2. **locality** — no locality-sensitive request ever executes off its
   home place (``misrouted``/``misplaced`` both zero; non-relaxed
   sticky completions are all warm and at home);
3. **failover** — the kill actually happened and orphans were
   re-dispatched to the survivor per the relax policy;
4. **report** — the latency report is well-formed: bench schema,
   per-class p50/p90/p99 populated, goodput consistent with the ok
   count, SVG figure valid XML.

Exit 1 on any violation.

Usage:
    PYTHONPATH=src python tools/serve_smoke.py
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time
import xml.etree.ElementTree as ET

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.faults.plan import FaultPlan  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeService,
    TrafficSpec,
    crash_schedule,
    drive_embedded,
    make_trace,
)
from repro.serve.recorder import (  # noqa: E402
    LatencyRecorder,
    build_report,
    report_svg,
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rate", type=float, default=150.0)
    ap.add_argument("--duration", type=float, default=2.0)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    # The hot place is the one that gets killed, so there is always a
    # backlog in flight there when the SIGKILL lands — the failover
    # path is exercised on every run, not only on lucky timing.
    traffic = TrafficSpec(rate=args.rate, duration_s=args.duration,
                          n_places=2, seed=args.seed, service_ms=15.0,
                          sticky_fraction=0.5, skew=1.5, hot_place=1)
    trace = make_trace(traffic)
    plan = FaultPlan.parse("crash:p1@0.5,policy:relax")
    kills = crash_schedule(plan, traffic.duration_s)

    async def scenario():
        service = ServeService(n_places=2, workers_per_place=2,
                               balancer="selective",
                               policy=plan.sensitive_policy,
                               seed=args.seed)
        async with service:
            records = await drive_embedded(service, trace, kills)
        return service, records

    wall_t0 = time.perf_counter()
    service, records = asyncio.run(scenario())
    wall = time.perf_counter() - wall_t0

    failures = []

    # 1. Exactly-once terminal outcomes; no accepted request lost/shed.
    pending = [r for r in records if not r.terminal]
    if pending:
        failures.append(f"{len(pending)} request(s) never reached a "
                        "terminal outcome (lost)")
    if len(records) != len(trace):
        failures.append(f"ledger holds {len(records)} records for "
                        f"{len(trace)} offered requests")
    post_hoc_shed = [r for r in records
                    if r.accepted and r.outcome == "shed"]
    if post_hoc_shed:
        failures.append(f"{len(post_hoc_shed)} accepted request(s) "
                        "were shed after the fact")
    failed = [r for r in records if r.outcome == "failed"]
    if failed:
        failures.append(f"{len(failed)} request(s) failed under "
                        "policy:relax (expected zero)")

    # 2. Locality: sensitive requests never execute off-home.
    off_home = [r for r in records
                if r.outcome == "ok" and not r.relaxed
                and not r.task["flexible"]
                and r.place != r.task["home"]]
    if off_home:
        failures.append(f"{len(off_home)} sensitive request(s) executed "
                        "off their home place")
    router = service.counters
    if router.get("misplaced", 0):
        failures.append("router saw misplaced executions")
    for p, counters in service.place_counters.items():
        for key in ("misrouted", "misplaced"):
            if counters.get(key, 0):
                failures.append(f"place {p} counted {key}="
                                f"{counters[key]}")

    # 3. The crash actually happened and failover engaged.
    if router.get("kills", 0) != 1 or router.get("place_deaths", 0) != 1:
        failures.append(f"expected exactly one kill/death, got "
                        f"kills={router.get('kills', 0)} "
                        f"deaths={router.get('place_deaths', 0)}")
    if not router.get("redispatched", 0):
        failures.append("no orphan was re-dispatched after the kill")
    if any(r.place != 0 for r in records
           if r.outcome == "ok" and r.relaxed):
        failures.append("a relaxed orphan completed on the dead place")

    # 4. Report shape.
    recorder = LatencyRecorder()
    for rec in records:
        recorder.record(rec.task["cls"], rec.outcome or "lost",
                        latency_s=rec.latency_s, relaxed=rec.relaxed,
                        warm=rec.warm)
    report = build_report([recorder.cell(
        "smoke|selective|2x2", {"balancer": "selective"},
        traffic.duration_s, wall, service_counters=service.snapshot())])
    cell = report["cells"][0]
    if report.get("schema") != 1 or report.get("benchmark") != "serve":
        failures.append("report header is not the bench schema")
    for cls in ("all", "sticky", "flex"):
        block = cell["latency_ms"][cls]
        if block["count"] and not (0 < block["p50"] <= block["p90"]
                                   <= block["p99"] <= block["max"]):
            failures.append(f"latency block {cls} is not ordered: "
                            f"{block}")
    req = cell["requests"]
    if req["ok"] + req["shed"] + req["failed"] != req["offered"]:
        failures.append(f"request accounting not conserved: {req}")
    if abs(cell["goodput_rps"] * traffic.duration_s - req["ok"]) > 1.0:
        failures.append("goodput inconsistent with ok count")
    try:
        root = ET.fromstring(report_svg(report))
        if not root.tag.endswith("svg"):
            failures.append("latency figure is not an <svg> root")
    except ET.ParseError as exc:
        failures.append(f"latency figure is not well-formed XML: {exc}")

    print(f"serve smoke: {req['offered']} offered, {req['ok']} ok, "
          f"{req['shed']} shed, {router.get('redispatched', 0)} "
          f"re-dispatched, {router.get('migrations', 0)} stolen, "
          f"p99 {cell['latency_ms']['all']['p99']:.1f} ms "
          f"({wall:.1f}s wall)")
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("all serve-tier invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
