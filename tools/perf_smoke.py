#!/usr/bin/env python
"""Overhead guard for the observability layer (CI perf-smoke job).

Runs the same (app, scheduler, cluster, seeds) benchmark twice:

1. **baseline** — no event bus attached;
2. **instrumented** — full stack: metrics registry, Chrome-trace sink,
   and the queue-depth sampler.

Each variant runs ``--repeats`` times and is scored by its *best*
wall-clock time (best-of-N is robust to CI noise: the minimum is the
least-contended sample).  Exits 1 when

    best(instrumented) / best(baseline)  >  --max-overhead

It also asserts correctness on the way: simulated metrics (makespan,
steal counts, ...) must be *identical* between the two variants —
observation may cost wall clock, never simulated behaviour.

Usage:
    PYTHONPATH=src python tools/perf_smoke.py \
        --app dmg --scale test --repeats 3 --max-overhead 2.5 \
        --chrome-trace perf-trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import ClusterSpec, SimRuntime, make_scheduler  # noqa: E402
from repro.apps import make_app  # noqa: E402
from repro.obs import ChromeTraceSink, EventBus, MetricsRegistry  # noqa: E402


def run_once(args, instrumented, trace_path=None):
    spec = ClusterSpec(n_places=args.places,
                       workers_per_place=args.workers,
                       max_threads=args.workers + 4)
    rt = SimRuntime(spec, make_scheduler(args.scheduler),
                    seed=args.sched_seed)
    if instrumented:
        bus = EventBus(sample_interval=args.sample_interval)
        bus.subscribe(MetricsRegistry())
        if trace_path:
            bus.subscribe(ChromeTraceSink(trace_path))
        bus.attach(rt)
    app = make_app(args.app, scale=args.scale, seed=args.seed)
    t0 = time.perf_counter()
    stats = app.run(rt)
    elapsed = time.perf_counter() - t0
    snap = stats.snapshot()
    snap.pop("obs", None)  # simulated metrics only
    return elapsed, json.dumps(snap, sort_keys=True)


def best_of(args, instrumented, trace_path=None):
    times, snaps = [], set()
    for rep in range(args.repeats):
        # Only the last instrumented repeat writes the trace artifact.
        path = trace_path if rep == args.repeats - 1 else None
        elapsed, snap = run_once(args, instrumented, trace_path=path)
        times.append(elapsed)
        snaps.add(snap)
    if len(snaps) != 1:
        print("FAIL: repeats of the same configuration diverged "
              "(simulation is not deterministic?)", file=sys.stderr)
        raise SystemExit(1)
    return min(times), next(iter(snaps))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="dmg")
    parser.add_argument("--scheduler", default="DistWS")
    parser.add_argument("--scale", default="test",
                        choices=("bench", "test"))
    parser.add_argument("--places", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument("--sched-seed", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--sample-interval", type=float, default=100_000)
    parser.add_argument("--max-overhead", type=float, default=2.5,
                        help="max instrumented/baseline wall-clock ratio")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="write the instrumented run's Chrome trace")
    args = parser.parse_args(argv)

    base_t, base_snap = best_of(args, instrumented=False)
    inst_t, inst_snap = best_of(args, instrumented=True,
                                trace_path=args.chrome_trace)
    ratio = inst_t / base_t if base_t > 0 else float("inf")

    print(f"baseline     : best of {args.repeats} = {base_t * 1e3:8.1f} ms")
    print(f"instrumented : best of {args.repeats} = {inst_t * 1e3:8.1f} ms")
    print(f"overhead     : {ratio:.2f}x (bound {args.max_overhead:.2f}x)")
    if args.chrome_trace:
        print(f"chrome trace : {args.chrome_trace}")

    if base_snap != inst_snap:
        print("\nFAIL: instrumentation changed simulated metrics — the "
              "event bus must be observation-only", file=sys.stderr)
        return 1
    if ratio > args.max_overhead:
        print(f"\nFAIL: observability overhead {ratio:.2f}x exceeds the "
              f"{args.max_overhead:.2f}x bound", file=sys.stderr)
        return 1
    print("\nOK: simulated metrics identical, overhead within bound")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
