"""Legacy setup shim so `pip install -e .` works without network access.

The offline environment lacks the `wheel` package, which PEP 660 editable
installs require; with this shim pip falls back to `setup.py develop`.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
